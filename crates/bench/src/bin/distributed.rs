//! Distributed-memory emulation: communication volume of the vertex-level
//! phase across rank counts (the "distributed" half of HyPC-Map's hybrid
//! design; Faysal & Arifuzzaman 2019, Faysal et al. 2021).

use asa_bench::{fmt_count, infomap_config, load_network, render_table};
use asa_graph::generators::PaperNetwork;
use asa_infomap::distributed::distributed_local_moves;
use asa_infomap::flow::FlowNetwork;

fn main() {
    let (graph, _) = load_network(PaperNetwork::Dblp);
    let icfg = infomap_config();
    let flow = FlowNetwork::from_graph(&graph, &icfg);

    let mut rows = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    for ranks in [1usize, 2, 4, 8] {
        let result = distributed_local_moves(&flow, &icfg, ranks);
        match &reference {
            None => reference = Some(result.partition.labels().to_vec()),
            Some(labels) => assert_eq!(
                labels.as_slice(),
                result.partition.labels(),
                "rank count changed the answer"
            ),
        }
        rows.push(vec![
            format!("{ranks}"),
            format!("{}", result.comm.supersteps),
            fmt_count(result.comm.cut_arcs),
            fmt_count(result.comm.messages),
            fmt_count(result.comm.update_bytes),
            fmt_count(result.comm.allreduce_bytes),
            format!("{:.4}", result.codelength),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Distributed emulation: communication volume, dblp-like vertex phase",
            &[
                "ranks",
                "supersteps",
                "cut arcs",
                "label messages",
                "update bytes",
                "allreduce bytes",
                "codelength",
            ],
            &rows,
        )
    );
    println!("\ninvariants checked: identical partition at every rank count; messages bounded by moved boundary vertices");
}
