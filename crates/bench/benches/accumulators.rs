//! Criterion micro-benches of the accumulation devices (host throughput).
//!
//! These measure *host* execution speed of the behavioural models (with a
//! null event sink), not simulated cycles — useful for keeping the
//! simulator itself fast and for the Table III/IV "native" column, whose
//! wall-clock comes from exactly these code paths.

use asa_accel::{AsaAccumulator, AsaConfig};
use asa_hashsim::{ChainedAccumulator, LinearProbeAccumulator};
use asa_simarch::accum::{FlowAccumulator, OracleAccumulator};
use asa_simarch::events::NullSink;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A power-law-ish key stream mimicking one vertex's neighbour-module ids:
/// `len` accumulations over roughly `len/2` distinct keys.
fn stream(len: usize, seed: u64) -> Vec<(u32, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let k = (rng.gen::<f64>().powi(2) * len as f64 / 2.0) as u32;
            (k, rng.gen_range(0.01..1.0))
        })
        .collect()
}

fn run<A: FlowAccumulator>(acc: &mut A, data: &[(u32, f64)], out: &mut Vec<(u32, f64)>) {
    let mut sink = NullSink;
    acc.begin(&mut sink);
    for &(k, v) in data {
        acc.accumulate(k, v, &mut sink);
    }
    acc.gather(out, &mut sink);
}

fn bench_accumulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulate_gather");
    for &len in &[8usize, 64, 512] {
        let data = stream(len, 42);
        group.throughput(Throughput::Elements(len as u64));

        let mut out = Vec::new();
        let mut chained = ChainedAccumulator::new();
        group.bench_with_input(BenchmarkId::new("chained", len), &data, |b, d| {
            b.iter(|| run(&mut chained, d, &mut out))
        });
        let mut probe = LinearProbeAccumulator::new();
        group.bench_with_input(BenchmarkId::new("linear_probe", len), &data, |b, d| {
            b.iter(|| run(&mut probe, d, &mut out))
        });
        let mut asa = AsaAccumulator::new(AsaConfig::paper_default());
        group.bench_with_input(BenchmarkId::new("asa", len), &data, |b, d| {
            b.iter(|| run(&mut asa, d, &mut out))
        });
        let mut oracle = OracleAccumulator::default();
        group.bench_with_input(BenchmarkId::new("oracle_btree", len), &data, |b, d| {
            b.iter(|| run(&mut oracle, d, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accumulators);
criterion_main!(benches);
