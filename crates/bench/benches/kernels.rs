//! Criterion benches of the individual Infomap kernels: PageRank, the map
//! equation (full codelength + move delta), and the FindBestCommunity
//! kernel on the host path.

use asa_graph::generators::{synth_network, PaperNetwork};
use asa_graph::Partition;
use asa_infomap::find_best::{find_best_community, FindBestScratch};
use asa_infomap::flow::FlowNetwork;
use asa_infomap::local_move::FastAccumulator;
use asa_infomap::mapeq::{codelength, module_flows_of, MapState};
use asa_infomap::pagerank::{pagerank, undirected_stationary};
use asa_infomap::InfomapConfig;
use asa_simarch::events::NullSink;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn workload() -> (asa_graph::CsrGraph, FlowNetwork, Partition) {
    let (graph, truth) = synth_network(PaperNetwork::Dblp, 512);
    let flow = FlowNetwork::from_graph(&graph, &InfomapConfig::default());
    (graph, flow, truth)
}

fn bench_pagerank(c: &mut Criterion) {
    let (graph, _, _) = workload();
    let mut group = c.benchmark_group("pagerank");
    group.throughput(Throughput::Elements(graph.num_arcs() as u64));
    group.bench_function("power_iteration", |b| {
        b.iter(|| pagerank(&graph, 0.15, 1e-9, 100))
    });
    group.bench_function("undirected_analytic", |b| {
        b.iter(|| undirected_stationary(&graph))
    });
    group.finish();
}

fn bench_mapeq(c: &mut Criterion) {
    let (_, flow, truth) = workload();
    let state = MapState::new(&flow, &truth);
    let mut group = c.benchmark_group("map_equation");
    group.bench_function("full_codelength", |b| b.iter(|| codelength(&flow, &truth)));
    group.bench_function("delta_move", |b| {
        let u = 0u32;
        let old = truth.community_of(u);
        let new = (old + 1) % truth.num_communities() as u32;
        let fo = module_flows_of(&flow, &truth, u, old);
        let fnw = module_flows_of(&flow, &truth, u, new);
        let node = flow.node_summary(u);
        b.iter(|| state.delta_move(old, new, &node, fo, fnw))
    });
    group.finish();
}

fn bench_find_best(c: &mut Criterion) {
    let (_, flow, _) = workload();
    let partition = Partition::singletons(flow.num_nodes());
    let state = MapState::new(&flow, &partition);
    let labels = partition.labels().to_vec();
    let mut acc = FastAccumulator::default();
    let mut scratch = FindBestScratch::default();
    let mut sink = NullSink;

    let mut group = c.benchmark_group("find_best_community");
    group.throughput(Throughput::Elements(flow.num_nodes() as u64));
    group.bench_function("full_sweep_host", |b| {
        b.iter(|| {
            let mut moves = 0usize;
            for u in 0..flow.num_nodes() as u32 {
                let d = find_best_community(
                    &flow,
                    &labels,
                    &state,
                    u,
                    &mut acc,
                    &mut sink,
                    &mut scratch,
                );
                moves += usize::from(d.best_module != labels[u as usize]);
            }
            moves
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pagerank, bench_mapeq, bench_find_best);
criterion_main!(benches);
