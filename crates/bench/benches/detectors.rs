//! Criterion benches of end-to-end community detection: Infomap vs the
//! Louvain and label-propagation baselines, plus the simulated device runs
//! (Baseline vs ASA) on a small network so the full simulation path stays
//! performance-regression-tested.

use asa_accel::AsaConfig;
use asa_baselines::{label_propagation, louvain, LouvainConfig};
use asa_graph::generators::{synth_network, PaperNetwork};
use asa_infomap::instrumented::{simulate_infomap, Device};
use asa_infomap::{detect_communities, InfomapConfig};
use asa_simarch::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_detectors(c: &mut Criterion) {
    let (graph, _) = synth_network(PaperNetwork::Amazon, 512);
    let mut group = c.benchmark_group("detectors");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));

    group.bench_function("infomap", |b| {
        b.iter(|| detect_communities(&graph, &InfomapConfig::default()))
    });
    group.bench_function("louvain", |b| {
        b.iter(|| louvain(&graph, &LouvainConfig::default()))
    });
    group.bench_function("label_propagation", |b| {
        b.iter(|| label_propagation(&graph, 20, 7))
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let (graph, _) = synth_network(PaperNetwork::Amazon, 1024);
    let icfg = InfomapConfig::default();
    let mcfg = MachineConfig::baseline(1);
    let mut group = c.benchmark_group("simulated_kernel");
    group.sample_size(10);

    group.bench_function("baseline_device", |b| {
        b.iter(|| simulate_infomap(&graph, &icfg, &mcfg, Device::SoftwareHash))
    });
    group.bench_function("asa_device", |b| {
        b.iter(|| {
            simulate_infomap(
                &graph,
                &icfg,
                &mcfg,
                Device::Asa(AsaConfig::paper_default()),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_simulation);
criterion_main!(benches);
