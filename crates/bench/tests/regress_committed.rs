//! The regression sentinel against the *committed* `BENCH_*.json`
//! baselines: exactly what `regress --smoke` gates in CI, asserted as a
//! test so `cargo test` catches a broken baseline or extractor without
//! running any binary.

use std::path::Path;

use asa_bench::regress::{compare, extract_metrics, sanity_errors};

fn load(file: &str) -> serde_json::Value {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed baseline {file} must be readable: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{file} must parse: {e:?}"))
}

#[test]
fn committed_baselines_pass_the_smoke_gate() {
    for file in [
        "BENCH_hostperf.json",
        "BENCH_simthroughput.json",
        "BENCH_serve.json",
        "BENCH_stream.json",
    ] {
        let metrics = extract_metrics(&load(file));
        assert!(
            !metrics.is_empty(),
            "{file}: extractor must find gated metrics"
        );
        let errors = sanity_errors(&metrics);
        assert!(errors.is_empty(), "{file}: {errors:?}");
        let deltas = compare(&metrics, &metrics, 1.0);
        assert_eq!(deltas.len(), metrics.len());
        assert!(
            deltas.iter().all(|d| !d.regressed),
            "{file}: self-compare must be clean"
        );
    }
}

#[test]
fn committed_hostperf_keeps_the_headline_speedup() {
    // The paper's host-side claim: the SPA sweep beats the hash sweep.
    let metrics = extract_metrics(&load("BENCH_hostperf.json"));
    let speedups: Vec<&_> = metrics
        .iter()
        .filter(|m| m.name.ends_with("sweep_speedup_spa_over_hash"))
        .collect();
    assert!(!speedups.is_empty());
    for m in speedups {
        assert!(
            m.value > 1.0,
            "{}: committed speedup must exceed 1.0, got {}",
            m.name,
            m.value
        );
    }
}
