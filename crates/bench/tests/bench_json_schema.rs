//! Schema check for the committed `BENCH_*.json` result files.
//!
//! The bench binaries embed run-provenance metadata (config hash, rustc
//! version, thread count, dataset) in every JSON they write; this test
//! parses the files committed at the repository root and enforces that
//! shape, so a binary that stops writing the metadata — or writes it
//! malformed — fails CI rather than silently producing unattributable
//! results.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn load(name: &str) -> serde_json::Value {
    let path = repo_root().join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// The metadata block every bench JSON must carry.
fn assert_meta(doc: &serde_json::Value, what: &str) {
    let meta = doc
        .get("meta")
        .unwrap_or_else(|| panic!("{what}: missing meta object"));
    let hash = meta["config_hash"]
        .as_str()
        .unwrap_or_else(|| panic!("{what}: meta.config_hash must be a string"));
    assert_eq!(hash.len(), 16, "{what}: config_hash is a 64-bit hex digest");
    assert!(
        hash.chars().all(|c| c.is_ascii_hexdigit()),
        "{what}: config_hash must be hex, got {hash:?}"
    );
    let rustc = meta["rustc_version"]
        .as_str()
        .unwrap_or_else(|| panic!("{what}: meta.rustc_version must be a string"));
    assert!(!rustc.is_empty(), "{what}: rustc_version empty");
    let threads = meta["threads"]
        .as_u64()
        .unwrap_or_else(|| panic!("{what}: meta.threads must be an integer"));
    assert!(threads >= 1, "{what}: threads must be >= 1");
    assert!(
        meta["dataset"].as_str().is_some_and(|d| !d.is_empty()),
        "{what}: meta.dataset must be a non-empty string"
    );
    assert!(
        meta["unix_time"].as_u64().is_some(),
        "{what}: meta.unix_time must be an integer"
    );
    // Resource accounting: peak RSS plus split CPU time. On Linux (where
    // the committed files are produced) the procfs sampler reports real
    // values, so a zero peak RSS means the accounting broke.
    assert!(
        meta["peak_rss_bytes"].as_u64().is_some_and(|b| b > 0),
        "{what}: meta.peak_rss_bytes must be a positive integer"
    );
    for key in ["cpu_user_s", "cpu_sys_s"] {
        assert!(
            meta[key].as_f64().is_some_and(|s| s >= 0.0),
            "{what}: meta.{key} must be a non-negative number"
        );
    }
    // The scale recorded in the metadata must agree with the top-level
    // field the pre-metadata schema already carried.
    assert_eq!(
        meta["scale_div"], doc["scale_div"],
        "{what}: meta.scale_div disagrees with scale_div"
    );
}

#[test]
fn hostperf_json_schema() {
    let doc = load("BENCH_hostperf.json");
    assert_eq!(doc["bench"], "hostperf");
    assert!(doc["scale_div"].as_u64().is_some());
    assert!(doc["reps"].as_u64().is_some_and(|r| r >= 1));
    assert_meta(&doc, "BENCH_hostperf.json");
    let networks = doc["networks"].as_array().expect("networks array");
    assert!(!networks.is_empty());
    let mut best_speedup = 0.0f64;
    let mut best_scalar = 0.0f64;
    for n in networks {
        assert!(n["network"].as_str().is_some());
        assert!(n["nodes"].as_u64().is_some());
        assert!(n["arcs"].as_u64().is_some());
        assert_eq!(n["identical_paths"].as_bool(), Some(true));
        assert!(n["sweep_seconds"]["hash"].as_f64().is_some());
        assert!(n["sweep_seconds"]["spa"].as_f64().is_some());
        let speedup = n["sweep_speedup_spa_over_hash"]
            .as_f64()
            .expect("sweep speedup");
        best_speedup = best_speedup.max(speedup);
        best_scalar = best_scalar.max(
            n["sweep_speedup_spa_scalar_over_hash"]
                .as_f64()
                .expect("committed baselines carry the forced-scalar leg"),
        );
        // The committed baseline carries the per-phase attribution for
        // both kernel legs, and the split must account for (most of) the
        // measured sweep time.
        for leg in ["dispatched", "scalar"] {
            let b = &n["kernel_breakdown"][leg];
            assert!(
                b["kernel_path"]
                    .as_str()
                    .is_some_and(|p| p.starts_with("spa-")),
                "kernel_breakdown.{leg}.kernel_path"
            );
            let sweep = b["sweep_seconds"].as_f64().expect("leg sweep seconds");
            let phases = b["accumulate_seconds"].as_f64().expect("accumulate")
                + b["gather_seconds"].as_f64().expect("gather")
                + b["scan_seconds"].as_f64().expect("scan");
            assert!(sweep > 0.0 && phases > 0.0, "kernel_breakdown.{leg} times");
        }
    }
    // The paper-parity claim the issue gates: the SPA sweep kernel beats
    // the hash path by >= 2.5x on at least one committed dataset, with the
    // portable (forced-scalar) kernel alone at >= 1.8x. Committed on a
    // machine where the dispatched leg ran AVX2.
    assert!(
        best_speedup >= 2.5,
        "committed sweep_speedup_spa_over_hash fell below the gated 2.5x claim: {best_speedup}"
    );
    assert!(
        best_scalar >= 1.8,
        "committed sweep_speedup_spa_scalar_over_hash fell below the gated 1.8x claim: {best_scalar}"
    );
}

#[test]
fn simthroughput_json_schema() {
    let doc = load("BENCH_simthroughput.json");
    assert_eq!(doc["bench"], "simthroughput");
    assert!(doc["scale_div"].as_u64().is_some());
    assert!(doc["events"].as_u64().is_some_and(|e| e > 0));
    assert_eq!(doc["identical_modes"].as_bool(), Some(true));
    assert_meta(&doc, "BENCH_simthroughput.json");
    let modes = doc["modes"].as_array().expect("modes array");
    let names: Vec<&str> = modes.iter().filter_map(|m| m["mode"].as_str()).collect();
    assert_eq!(names, ["inline", "batched", "pipelined"]);
    for m in modes {
        assert!(m["sim_seconds"].as_f64().is_some_and(|s| s > 0.0));
        assert!(m["events_per_sec"].as_f64().is_some());
    }
    let kernel = &doc["kernel"];
    assert!(kernel["captured_events"].as_u64().is_some_and(|e| e > 0));
    assert_eq!(kernel["replay_identical"].as_bool(), Some(true));
}

#[test]
fn stream_json_schema() {
    let doc = load("BENCH_stream.json");
    assert_eq!(doc["bench"], "stream");
    assert!(doc["scale_div"].as_u64().is_some());
    assert_meta(&doc, "BENCH_stream.json");
    assert!(doc["nodes"].as_u64().is_some_and(|n| n > 0));
    assert!(doc["arcs"].as_u64().is_some_and(|a| a > 0));
    assert!(doc["hot_vertices"].as_u64().is_some_and(|h| h > 0));
    assert!(doc["seed_seconds"].as_f64().is_some_and(|s| s > 0.0));
    assert!(doc["seed_codelength"].as_f64().is_some_and(|c| c > 0.0));
    let batches = doc["batches"].as_u64().expect("batches") as usize;
    assert!(batches >= 1);
    assert!(doc["edits_per_batch"].as_u64().is_some_and(|e| e > 0));
    let drift_budget = doc["drift_budget"].as_f64().expect("drift_budget");
    assert!(drift_budget > 0.0 && drift_budget < 1.0);

    let reports = doc["batch_reports"].as_array().expect("batch_reports");
    assert_eq!(reports.len(), batches, "one report per batch");
    for (i, r) in reports.iter().enumerate() {
        let what = format!("batch_reports[{i}]");
        assert_eq!(r["batch"].as_u64(), Some(i as u64), "{what}: batch index");
        assert!(r["ops"].as_u64().is_some_and(|o| o > 0), "{what}: ops");
        let incremental = r["incremental"].as_bool().expect("incremental flag");
        // A fallback batch must name its guard reason; an incremental one
        // must not carry one.
        assert_eq!(
            r["fallback"].as_str().is_some(),
            !incremental,
            "{what}: fallback reason iff the guard fired"
        );
        assert!(r["frontier_size"].as_u64().is_some(), "{what}: frontier");
        assert!(r["ripple_rounds"].as_u64().is_some(), "{what}: ripples");
        for key in ["incremental_seconds", "fresh_seconds"] {
            assert!(
                r[key].as_f64().is_some_and(|s| s > 0.0),
                "{what}: {key} must be positive"
            );
        }
        for key in ["incremental_codelength", "fresh_codelength"] {
            assert!(
                r[key].as_f64().is_some_and(f64::is_finite),
                "{what}: {key} must be finite"
            );
        }
        assert!(r["drift"].as_f64().is_some_and(f64::is_finite));
    }

    let summary = &doc["summary"];
    let incr = summary["incremental_batches"]
        .as_u64()
        .expect("incremental_batches");
    let fallbacks = summary["fallbacks"].as_u64().expect("fallbacks");
    assert_eq!(incr + fallbacks, batches as u64, "summary accounting");
    assert!(summary["mean_incremental_seconds"]
        .as_f64()
        .is_some_and(|s| s > 0.0));
    assert!(summary["mean_fresh_seconds"]
        .as_f64()
        .is_some_and(|s| s > 0.0));
    assert!(summary["mean_drift"].as_f64().is_some_and(f64::is_finite));

    // The dynamic-graph subsystem's acceptance gates: incremental updates
    // beat fresh full runs by >= 3x while staying within 1% codelength
    // drift, and the quality guard stays quiet on the committed workload.
    let speedup = summary["incremental_speedup"]
        .as_f64()
        .expect("incremental_speedup");
    assert!(
        speedup >= 3.0,
        "committed incremental_speedup fell below the gated 3x claim: {speedup}"
    );
    let max_drift = summary["max_drift"].as_f64().expect("max_drift");
    assert!(
        (0.0..=0.01).contains(&max_drift),
        "committed max_drift broke the gated 1% budget: {max_drift}"
    );
    let fallback_rate = summary["fallback_rate"].as_f64().expect("fallback_rate");
    assert!(
        (0.0..=0.25).contains(&fallback_rate),
        "committed fallback_rate broke the gated 0.25 bound: {fallback_rate}"
    );
}

/// An ordered positive p50 <= p95 <= p99 triple (latency, queue-wait, or
/// service distributions); queue-wait p50 may be zero under light load.
fn assert_pct_triple(obj: &serde_json::Value, what: &str, allow_zero_p50: bool) {
    let p50 = obj["p50"].as_f64().unwrap_or_else(|| panic!("{what}: p50"));
    let p95 = obj["p95"].as_f64().unwrap_or_else(|| panic!("{what}: p95"));
    let p99 = obj["p99"].as_f64().unwrap_or_else(|| panic!("{what}: p99"));
    assert!(
        (allow_zero_p50 || p50 > 0.0) && p50 >= 0.0 && p50 <= p95 && p95 <= p99,
        "{what}: percentiles must be ordered, got {p50}/{p95}/{p99}"
    );
}

/// One offered-load level of a serve sweep. Returns the level's cache hit
/// rate so the caller can assert the sweep demonstrated real hits.
fn assert_serve_level(level: &serde_json::Value, what: &str) -> f64 {
    assert!(level["requests"].as_u64().is_some_and(|r| r > 0));
    assert!(level["throughput_rps"].as_f64().is_some_and(|t| t > 0.0));
    assert_pct_triple(&level["latency_us"], &format!("{what}.latency_us"), false);
    // Queue-wait vs service split: both ordered, and for the resolved
    // requests the end-to-end latency dominates its own service component.
    assert_pct_triple(&level["queue_us"], &format!("{what}.queue_us"), true);
    assert_pct_triple(&level["service_us"], &format!("{what}.service_us"), true);
    let hit_rate = level["cache_hit_rate"]
        .as_f64()
        .unwrap_or_else(|| panic!("{what}: cache_hit_rate"));
    assert!((0.0..=1.0).contains(&hit_rate));
    let shed_rate = level["shed_rate"]
        .as_f64()
        .unwrap_or_else(|| panic!("{what}: shed_rate"));
    assert!((0.0..=1.0).contains(&shed_rate));
    // Sharded-engine accounting fields must be present (zero is fine).
    for field in ["steals", "replications", "stolen_runs", "queue_depth_max"] {
        assert!(
            level[field].as_u64().is_some(),
            "{what}: missing counter field {field}"
        );
    }
    // Accounting must balance: every request terminated somewhere.
    let total = level["resolved_with_result"].as_u64().unwrap()
        + level["shed"].as_u64().unwrap()
        + level["deadline_exceeded"].as_u64().unwrap();
    assert_eq!(
        total,
        level["requests"].as_u64().unwrap(),
        "{what}: accounting"
    );
    hit_rate
}

/// A full load sweep (the legacy top-level `levels` array or one
/// `shard_sweep` entry's curve): >= 3 levels at increasing offered load.
fn assert_serve_sweep(levels: &[serde_json::Value], what: &str) -> Vec<f64> {
    assert!(
        levels.len() >= 3,
        "{what}: the load sweep must cover at least three offered-load levels"
    );
    let mut prev_offered = 0.0;
    let mut hit_rates = Vec::new();
    for (i, level) in levels.iter().enumerate() {
        let what = format!("{what}[{i}]");
        let offered = level["offered_rps"]
            .as_f64()
            .unwrap_or_else(|| panic!("{what}: offered_rps"));
        assert!(
            offered > prev_offered,
            "{what}: offered loads must be increasing"
        );
        prev_offered = offered;
        hit_rates.push(assert_serve_level(level, &what));
    }
    hit_rates
}

#[test]
fn serve_json_schema() {
    let doc = load("BENCH_serve.json");
    assert_eq!(doc["bench"], "serve");
    assert!(doc["scale_div"].as_u64().is_some());
    assert!(doc["workers"].as_u64().is_some_and(|w| w >= 1));
    assert!(doc["steal"].as_bool().is_some());
    assert!(doc["capacity_est_rps"].as_f64().is_some_and(|c| c > 0.0));
    assert_meta(&doc, "BENCH_serve.json");

    let workloads = doc["workloads"].as_array().expect("workloads array");
    assert!(!workloads.is_empty());
    for w in workloads {
        assert!(w["family"]
            .as_str()
            .is_some_and(|f| ["ba", "rmat", "lfr"].contains(&f)));
        assert!(w["nodes"].as_u64().is_some_and(|n| n > 0));
        assert!(w["arcs"].as_u64().is_some_and(|a| a > 0));
    }

    // Legacy schema: the top-level `levels` array is the shards=1 curve.
    let levels = doc["levels"].as_array().expect("levels array");
    let hit_rates = assert_serve_sweep(levels, "BENCH_serve.json levels");
    assert!(
        hit_rates.iter().any(|&h| h > 0.0),
        "the committed sweep must demonstrate a non-zero cache hit rate"
    );

    // The shard-scaling sweep: the committed baseline carries the full
    // shards in {1, 2, 4} curve at one worker per shard.
    let sweep = doc["shard_sweep"].as_array().expect("shard_sweep array");
    let shard_counts: Vec<u64> = sweep
        .iter()
        .map(|e| e["shards"].as_u64().expect("shard_sweep[*].shards"))
        .collect();
    assert_eq!(
        shard_counts,
        [1, 2, 4],
        "the committed baseline sweeps shards 1, 2, 4"
    );
    for entry in sweep {
        let shards = entry["shards"].as_u64().unwrap();
        let what = format!("BENCH_serve.json shard_sweep shards={shards}");
        assert!(
            entry["workers_per_shard"].as_u64().is_some_and(|w| w >= 1),
            "{what}: workers_per_shard"
        );
        assert!(entry["steal"].as_bool().is_some(), "{what}: steal");
        let levels = entry["levels"].as_array().expect("shard_sweep levels");
        assert_serve_sweep(levels, &what);
    }

    // The headline scaling claim the issue gates: at the top offered load
    // (8x a single worker's capacity) the 4-shard engine converts routing
    // affinity + aggregate queue capacity into cache hits instead of
    // shedding. Committed thresholds; `regress` tracks drift within them.
    let four_levels = sweep[2]["levels"].as_array().unwrap();
    let four = &four_levels[four_levels.len() - 1];
    let hit = four["cache_hit_rate"].as_f64().unwrap();
    let shed = four["shed_rate"].as_f64().unwrap();
    assert!(
        hit >= 0.43,
        "shards=4 top-level cache hit rate fell below the gated 0.43: {hit}"
    );
    assert!(
        shed < 0.325,
        "shards=4 top-level shed rate broke the gated 0.325 bound: {shed}"
    );
}
