//! The random walker's flow network.
//!
//! Infomap's map equation is a function of *flows*: the stationary visit
//! rate `p_α` of each vertex and the per-arc flow `F(α→β)` of the walker.
//! `FindBestCommunity` accumulates these flows per neighbouring module, and
//! `Convert2SuperNode` aggregates them into super-edges. Representing the
//! coarse levels directly as flow networks (rather than re-deriving flows
//! from a coarsened weighted graph) keeps flows exactly conserved across
//! levels for directed graphs, where PageRank does not compose under
//! aggregation.

use asa_graph::{CsrGraph, NodeId, Partition};
use rayon::prelude::*;

use crate::config::InfomapConfig;
use crate::pagerank::{pagerank, undirected_stationary};

/// A weighted-flow digraph with both adjacency directions and per-node
/// visit rates. Self-loop flow (walker staying on a supernode) is dropped:
/// it never crosses a module boundary, so it affects neither exit flows nor
/// move decisions.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    num_nodes: u32,
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    out_flows: Vec<f64>,
    in_offsets: Vec<u64>,
    in_targets: Vec<NodeId>,
    in_flows: Vec<f64>,
    node_flow: Vec<f64>,
    /// Original-vertex count per node: 1 at the vertex level, member count
    /// for supernodes. Needed by the recorded-teleportation map equation,
    /// whose exit term depends on module sizes in *original* vertices.
    node_weight: Vec<u64>,
    /// Σ of out-arc flows per node (excludes self-loops).
    out_total: Vec<f64>,
    /// Σ of in-arc flows per node.
    in_total: Vec<f64>,
    /// True when the in-CSR is byte-identical to the out-CSR (undirected
    /// flow models and their coarsenings). Lets kernels accumulate one
    /// direction and reuse the sums for the other.
    symmetric: bool,
}

impl FlowNetwork {
    /// Derives the flow network of a graph.
    ///
    /// * Undirected: `p_α = s_α / 2W` (analytic stationary distribution) and
    ///   `F(α→β) = w_αβ / 2W`, symmetric.
    /// * Directed: `p` from PageRank with teleport `cfg.teleport`, and
    ///   `F(α→β) = p_α · w_αβ / s_α` (unrecorded teleportation).
    pub fn from_graph(graph: &CsrGraph, cfg: &InfomapConfig) -> Self {
        let n = graph.num_nodes();
        let node_flow = if graph.is_directed() {
            pagerank(
                graph,
                cfg.teleport,
                cfg.pagerank_tol,
                cfg.pagerank_max_iters,
            )
            .rank
        } else {
            undirected_stationary(graph)
        };

        let mut arcs: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(graph.num_arcs());
        let directed = graph.is_directed();
        for u in graph.nodes() {
            let s = graph.out_weight(u);
            if s <= 0.0 {
                continue;
            }
            let scale = node_flow[u as usize] / s;
            for e in graph.out_neighbors(u).iter() {
                if e.target == u {
                    continue;
                }
                if directed {
                    arcs.push((u, e.target, e.weight * scale));
                } else if u < e.target {
                    // Undirected: F(α→β) = F(β→α) = w/2W exactly. Emitting
                    // both directions of each edge with the *same* computed
                    // value (rather than re-deriving it from the mirror
                    // arc's per-node scale, which rounds differently) makes
                    // the two CSRs byte-identical, so `is_symmetric` holds
                    // and the SPA kernels skip the in-direction entirely.
                    let f = e.weight * scale;
                    arcs.push((u, e.target, f));
                    arcs.push((e.target, u, f));
                }
            }
        }
        Self::from_arcs(n as u32, node_flow, arcs)
    }

    /// Assembles a flow network from explicit flow arcs (self-loops are
    /// dropped; parallel arcs are summed), with every node weight 1.
    pub fn from_arcs(
        num_nodes: u32,
        node_flow: Vec<f64>,
        arcs: Vec<(NodeId, NodeId, f64)>,
    ) -> Self {
        let weights = vec![1u64; num_nodes as usize];
        Self::from_arcs_weighted(num_nodes, node_flow, weights, arcs)
    }

    /// [`FlowNetwork::from_arcs`] with explicit per-node original-vertex
    /// weights (used by [`FlowNetwork::coarsen`]).
    pub fn from_arcs_weighted(
        num_nodes: u32,
        node_flow: Vec<f64>,
        node_weight: Vec<u64>,
        mut arcs: Vec<(NodeId, NodeId, f64)>,
    ) -> Self {
        assert_eq!(node_flow.len(), num_nodes as usize);
        assert_eq!(node_weight.len(), num_nodes as usize);
        arcs.retain(|&(u, v, _)| u != v);
        // Counting-sort arcs into rows (O(m)), then sort and duplicate-merge
        // each small row (O(Σ d·log d)). A global comparison sort here was
        // the dominant cost of flow-network construction on the dense
        // stand-ins — large enough to distort the Fig. 2a kernel shares.
        let (out_offsets, out_targets, out_flows) =
            rows_to_merged_csr(num_nodes, arcs.iter().map(|&(u, v, f)| (u, v, f)));
        let (in_offsets, in_targets, in_flows) =
            rows_to_merged_csr(num_nodes, arcs.iter().map(|&(u, v, f)| (v, u, f)));

        let mut out_total = vec![0.0f64; num_nodes as usize];
        let mut in_total = vec![0.0f64; num_nodes as usize];
        for u in 0..num_nodes as usize {
            out_total[u] = out_flows[out_offsets[u] as usize..out_offsets[u + 1] as usize]
                .iter()
                .sum();
            in_total[u] = in_flows[in_offsets[u] as usize..in_offsets[u + 1] as usize]
                .iter()
                .sum();
        }

        let symmetric = out_offsets == in_offsets
            && out_targets == in_targets
            && out_flows
                .iter()
                .zip(in_flows.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());

        Self {
            num_nodes,
            out_offsets,
            out_targets,
            out_flows,
            in_offsets,
            in_targets,
            in_flows,
            node_flow,
            node_weight,
            out_total,
            in_total,
            symmetric,
        }
    }

    /// Aggregates the network by a partition: the paper's
    /// `Convert2SuperNode` kernel. Supernode flow is the sum of member
    /// flows; cross-module arcs merge into super-arcs with accumulated
    /// flow; intra-module flow becomes (dropped) self-loop flow.
    ///
    /// The partition must be compact (labels `0..num_communities`).
    pub fn coarsen(&self, partition: &Partition) -> FlowNetwork {
        assert_eq!(partition.len(), self.num_nodes as usize);
        let m = partition.num_communities();
        let mut node_flow = vec![0.0f64; m];
        let mut node_weight = vec![0u64; m];
        for u in 0..self.num_nodes as usize {
            let c = partition.community_of(u as u32) as usize;
            node_flow[c] += self.node_flow[u];
            node_weight[c] += self.node_weight[u];
        }
        // Sort-based super-arc aggregation: each fixed-size node chunk
        // collects its cross-module (src, dst, flow) triples, sorts them,
        // and pre-merges duplicates locally in parallel; the counting-sort
        // CSR build in `from_arcs_weighted` completes the global merge.
        // Chunk boundaries depend only on the node count, so the arc
        // stream — and hence flow summation order — is independent of
        // thread count. The simulated cost of Convert2SuperNode is not
        // part of the paper's hash-operation measurements (Fig. 2 charges
        // hash time inside FindBestCommunity only).
        const CHUNK: usize = 8192;
        let n = self.num_nodes as usize;
        // On symmetric networks, visit each underlying edge once (from its
        // lower-community direction) and emit both super-arc directions
        // with the same accumulated value — the coarse network then stays
        // byte-symmetric, so every level keeps the SPA one-direction fast
        // path. The mirror arc's flow is bit-equal by symmetry, so this
        // changes nothing numerically.
        let symmetric = self.symmetric;
        let arcs: Vec<(NodeId, NodeId, f64)> = (0..n.div_ceil(CHUNK))
            .into_par_iter()
            .map(|ci| {
                let (lo, hi) = (ci * CHUNK, ((ci + 1) * CHUNK).min(n));
                let mut triples: Vec<(NodeId, NodeId, f64)> = Vec::new();
                for u in lo as u32..hi as u32 {
                    let cu = partition.community_of(u);
                    for (v, f) in self.out_arcs(u) {
                        let cv = partition.community_of(v);
                        if cu != cv && !(symmetric && cu > cv) {
                            triples.push((cu, cv, f));
                        }
                    }
                }
                // Secondary key = flow bits: equal-pair contributions merge
                // in a deterministic value order regardless of which
                // direction produced them.
                triples.sort_unstable_by_key(|&(s, t, f)| (s, t, f.to_bits()));
                let mut merged: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(triples.len());
                for (s, t, f) in triples {
                    match merged.last_mut() {
                        Some(last) if last.0 == s && last.1 == t => last.2 += f,
                        _ => merged.push((s, t, f)),
                    }
                }
                if symmetric {
                    let mirrored: Vec<(NodeId, NodeId, f64)> =
                        merged.iter().map(|&(s, t, f)| (t, s, f)).collect();
                    merged.extend(mirrored);
                }
                merged
            })
            .flatten()
            .collect();
        FlowNetwork::from_arcs_weighted(m as u32, node_flow, node_weight, arcs)
    }

    /// Number of nodes (vertices or supernodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of stored (non-self) flow arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// True when in-arcs mirror out-arcs exactly (undirected flow models),
    /// so per-module in-flow sums equal the out-flow sums bit-for-bit.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Visit rate of node `u`.
    #[inline]
    pub fn node_flow(&self, u: NodeId) -> f64 {
        self.node_flow[u as usize]
    }

    /// All node visit rates.
    #[inline]
    pub fn node_flows(&self) -> &[f64] {
        &self.node_flow
    }

    /// Number of original vertices node `u` stands for.
    #[inline]
    pub fn node_weight(&self, u: NodeId) -> u64 {
        self.node_weight[u as usize]
    }

    /// The per-node quantities the move evaluation consumes.
    #[inline]
    pub fn node_summary(&self, u: NodeId) -> crate::mapeq::NodeSummary {
        crate::mapeq::NodeSummary {
            flow: self.node_flow[u as usize],
            weight: self.node_weight[u as usize],
            out_total: self.out_total[u as usize],
            in_total: self.in_total[u as usize],
        }
    }

    /// Σ of `u`'s outgoing arc flows.
    #[inline]
    pub fn out_flow_total(&self, u: NodeId) -> f64 {
        self.out_total[u as usize]
    }

    /// Σ of `u`'s incoming arc flows.
    #[inline]
    pub fn in_flow_total(&self, u: NodeId) -> f64 {
        self.in_total[u as usize]
    }

    /// Out-degree (distinct flow targets).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]) as usize
    }

    /// In-degree (distinct flow sources).
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        (self.in_offsets[u as usize + 1] - self.in_offsets[u as usize]) as usize
    }

    /// Raw CSR row of `u`'s outgoing arcs: `(targets, flows)` slices. The
    /// vectorized sweep kernel consumes rows in this form so the label
    /// gather and flow reads compile to unrolled indexed loads (and so the
    /// next row can be software-prefetched before it is iterated).
    #[inline]
    pub fn out_arc_slices(&self, u: NodeId) -> (&[NodeId], &[f64]) {
        let (lo, hi) = (
            self.out_offsets[u as usize] as usize,
            self.out_offsets[u as usize + 1] as usize,
        );
        (&self.out_targets[lo..hi], &self.out_flows[lo..hi])
    }

    /// Raw CSR row of `u`'s incoming arcs: `(sources, flows)` slices.
    #[inline]
    pub fn in_arc_slices(&self, u: NodeId) -> (&[NodeId], &[f64]) {
        let (lo, hi) = (
            self.in_offsets[u as usize] as usize,
            self.in_offsets[u as usize + 1] as usize,
        );
        (&self.in_targets[lo..hi], &self.in_flows[lo..hi])
    }

    /// Outgoing `(target, flow)` arcs of `u`.
    #[inline]
    pub fn out_arcs(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (
            self.out_offsets[u as usize] as usize,
            self.out_offsets[u as usize + 1] as usize,
        );
        self.out_targets[lo..hi]
            .iter()
            .zip(self.out_flows[lo..hi].iter())
            .map(|(&t, &f)| (t, f))
    }

    /// Incoming `(source, flow)` arcs of `u`.
    #[inline]
    pub fn in_arcs(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (
            self.in_offsets[u as usize] as usize,
            self.in_offsets[u as usize + 1] as usize,
        );
        self.in_targets[lo..hi]
            .iter()
            .zip(self.in_flows[lo..hi].iter())
            .map(|(&t, &f)| (t, f))
    }

    /// Total flow over all arcs (the walker's probability of moving along a
    /// link per step; < 1 when self-loops or dangling mass exist).
    pub fn total_arc_flow(&self) -> f64 {
        self.out_flows.iter().sum()
    }
}

/// Counting-sorts arcs by source into CSR rows, then sorts each row by
/// target and merges duplicate targets by summing flows.
fn rows_to_merged_csr<I>(num_nodes: u32, arcs: I) -> (Vec<u64>, Vec<NodeId>, Vec<f64>)
where
    I: Iterator<Item = (NodeId, NodeId, f64)> + Clone,
{
    let n = num_nodes as usize;
    let mut raw_offsets = vec![0u64; n + 1];
    let mut count = 0usize;
    for (u, _, _) in arcs.clone() {
        raw_offsets[u as usize + 1] += 1;
        count += 1;
    }
    for i in 0..n {
        raw_offsets[i + 1] += raw_offsets[i];
    }
    let mut cursor = raw_offsets.clone();
    let mut raw_targets = vec![0 as NodeId; count];
    let mut raw_flows = vec![0f64; count];
    for (u, v, f) in arcs {
        let slot = cursor[u as usize] as usize;
        raw_targets[slot] = v;
        raw_flows[slot] = f;
        cursor[u as usize] += 1;
    }

    // Per-row sort + merge into the final arrays.
    let mut offsets = vec![0u64; n + 1];
    let mut targets = Vec::with_capacity(count);
    let mut flows = Vec::with_capacity(count);
    let mut idx: Vec<u32> = Vec::new();
    for u in 0..n {
        let (lo, hi) = (raw_offsets[u] as usize, raw_offsets[u + 1] as usize);
        let row_t = &raw_targets[lo..hi];
        let row_f = &raw_flows[lo..hi];
        idx.clear();
        idx.extend(0..(hi - lo) as u32);
        // Secondary key = flow bits: parallel-arc duplicates then merge in
        // a deterministic value order, so mirrored arc streams (undirected
        // flow models) produce byte-identical rows in both CSR directions.
        idx.sort_unstable_by_key(|&i| (row_t[i as usize], row_f[i as usize].to_bits()));
        for &i in &idx {
            let (t, f) = (row_t[i as usize], row_f[i as usize]);
            match targets.last() {
                Some(&last) if last == t && targets.len() > offsets[u] as usize => {
                    *flows.last_mut().unwrap() += f;
                }
                _ => {
                    targets.push(t);
                    flows.push(f);
                }
            }
        }
        offsets[u + 1] = targets.len() as u64;
    }
    (offsets, targets, flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::GraphBuilder;

    fn two_triangles() -> CsrGraph {
        // Two triangles joined by one bridge edge.
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn undirected_flows_symmetric_and_conserved() {
        let g = two_triangles();
        let f = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        assert_eq!(f.num_nodes(), 6);
        // node flows sum to 1
        let sum: f64 = f.node_flows().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Each arc flow = w / 2W = 1/14; symmetric.
        for u in 0..6u32 {
            for (v, fw) in f.out_arcs(u) {
                assert!((fw - 1.0 / 14.0).abs() < 1e-12);
                let back: f64 = f
                    .out_arcs(v)
                    .find(|&(t, _)| t == u)
                    .map(|(_, fw)| fw)
                    .unwrap();
                assert!((back - fw).abs() < 1e-12);
            }
        }
        // out_total equals node_flow for undirected, loop-free graphs.
        for u in 0..6u32 {
            assert!((f.out_flow_total(u) - f.node_flow(u)).abs() < 1e-12);
        }
    }

    #[test]
    fn directed_flows_follow_pagerank() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 0, 1.0);
        let g = b.build();
        let f = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        // Cycle: p uniform, each arc carries p_u = 1/3.
        for u in 0..3u32 {
            assert!((f.out_flow_total(u) - 1.0 / 3.0).abs() < 1e-6);
            assert_eq!(f.out_degree(u), 1);
            assert_eq!(f.in_degree(u), 1);
        }
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 0, 5.0);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        let g = b.build();
        let f = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        assert_eq!(f.out_degree(0), 1);
        assert!(f.out_arcs(0).all(|(t, _)| t == 1));
    }

    #[test]
    fn coarsen_conserves_flow() {
        let g = two_triangles();
        let f = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let c = f.coarsen(&p);
        assert_eq!(c.num_nodes(), 2);
        let nf: f64 = c.node_flows().iter().sum();
        assert!((nf - 1.0).abs() < 1e-12);
        // Only the bridge crosses: flow 1/14 each direction.
        assert_eq!(c.num_arcs(), 2);
        assert!((c.out_flow_total(0) - 1.0 / 14.0).abs() < 1e-12);
        assert!((c.in_flow_total(1) - 1.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn coarsen_merges_parallel_superarcs() {
        // Path 0-1-2-3 partitioned {0,1},{2,3}: two cross arcs merge... the
        // cut has one edge (1,2) but flows both ways: 2 directed arcs.
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let f = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        let c = f.coarsen(&p);
        assert_eq!(c.num_arcs(), 2);
        // Cross flow each way = 1/6 (W=3, arc weight sum = 6).
        assert!((c.out_flow_total(0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn from_arcs_merges_duplicates() {
        let f = FlowNetwork::from_arcs(
            2,
            vec![0.5, 0.5],
            vec![(0, 1, 0.1), (0, 1, 0.2), (1, 1, 9.0)],
        );
        assert_eq!(f.num_arcs(), 1);
        assert!((f.out_flow_total(0) - 0.3).abs() < 1e-12);
        assert_eq!(f.out_degree(1), 0); // self-loop dropped
    }
}
