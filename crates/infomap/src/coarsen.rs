//! `Convert2SuperNode`: module aggregation between levels.
//!
//! "The groups of vertices generated in the vertex level phase ... are
//! represented by the structure called a super node. ... If multiple
//! vertices of one super node are connected to another super node, a single
//! super edge is created with accumulated edge weights." (Section II-C.)

use asa_graph::Partition;

use crate::flow::FlowNetwork;

/// Compacts `partition` and aggregates `flow` by it, returning the coarse
/// flow network and the compacted vertex→supernode partition.
pub fn convert_to_supernodes(
    flow: &FlowNetwork,
    partition: &Partition,
) -> (FlowNetwork, Partition) {
    let mut compact = partition.clone();
    compact.compact();
    let coarse = flow.coarsen(&compact);
    (coarse, compact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use crate::mapeq::codelength;
    use asa_graph::GraphBuilder;

    #[test]
    fn codelength_invariant_under_coarsening() {
        // Aggregating a partition into supernodes, then scoring the
        // singleton partition of the coarse network *with the original
        // vertex-level node term*, must give the same codelength as scoring
        // the partition on the fine network — module exit and flow sums are
        // conserved exactly by Convert2SuperNode.
        use crate::mapeq::{plogp, MapState};
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let partition = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let l_fine = codelength(&flow, &partition);
        let node_term: f64 = flow.node_flows().iter().copied().map(plogp).sum();

        let (coarse, compact) = convert_to_supernodes(&flow, &partition);
        assert_eq!(coarse.num_nodes(), 2);
        assert_eq!(compact.num_communities(), 2);
        let l_coarse =
            MapState::with_node_term(&coarse, &Partition::singletons(2), node_term).codelength();
        assert!(
            (l_fine - l_coarse).abs() < 1e-12,
            "codelength changed across coarsening: {l_fine} vs {l_coarse}"
        );
    }

    #[test]
    fn handles_sparse_labels() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        // Non-dense labels (7 and 42) must compact to 0 and 1.
        let partition = Partition::from_labels(vec![7, 7, 42, 42]);
        let (coarse, compact) = convert_to_supernodes(&flow, &partition);
        assert_eq!(coarse.num_nodes(), 2);
        assert_eq!(compact.labels(), &[0, 0, 1, 1]);
        // No cross edges: coarse network has no arcs.
        assert_eq!(coarse.num_arcs(), 0);
    }
}
