//! Parallel information-theoretic community detection (Infomap).
//!
//! This crate reimplements the paper's HyPC-Map pipeline (Faysal et al.,
//! HPEC 2021) — the four kernels of Section II-C:
//!
//! 1. **PageRank** ([`pagerank`]): ergodic vertex visit probabilities via
//!    power iteration with teleportation.
//! 2. **FindBestCommunity** ([`find_best`]): per-vertex greedy module
//!    selection minimizing the map equation, written once and generic over
//!    the flow-accumulation device — the software hash Baseline
//!    (Algorithm 1) and the ASA accelerator (Algorithm 2) plug in through
//!    [`asa_simarch::FlowAccumulator`].
//! 3. **Convert2SuperNode** ([`coarsen`]): module aggregation into
//!    supernodes with accumulated super-edge flows.
//! 4. **UpdateMembers** ([`asa_graph::Partition::project`]): projecting
//!    coarse module choices back onto original vertices.
//!
//! The [`driver`] runs the multi-level loop with per-kernel wall-clock
//! timing (Fig. 2a); [`instrumented`] runs the `FindBestCommunity` kernel
//! on the `asa-simarch` machine model to produce the simulated
//! instruction/misprediction/CPI/cycle numbers behind Tables III–V and
//! Figures 6–11.
//!
//! # Flow model
//!
//! Teleportation is *unrecorded* (used to compute stationary visit rates,
//! not encoded in the codelength), matching modern Infomap defaults; for
//! undirected graphs the stationary distribution is the analytic
//! degree-proportional one and PageRank iteration is skipped. See
//! [`flow::FlowNetwork`].

pub mod cancel;
pub mod coarsen;
pub mod config;
pub mod distributed;
pub mod driver;
pub mod exhaustive;
pub mod find_best;
pub mod flow;
pub mod hierarchy;
pub mod incremental;
pub mod instrumented;
pub mod kernel;
pub mod local_move;
pub mod mapeq;
pub mod module_stats;
pub mod pagerank;
pub mod result;
pub mod schedule;

pub use cancel::CancelToken;
pub use config::InfomapConfig;
pub use distributed::{detect_communities_distributed_cancellable, CommStats, DistEngine};
pub use driver::{
    detect_communities, detect_communities_cancellable, detect_communities_observed,
    detect_communities_renumbered, Infomap,
};
pub use flow::FlowNetwork;
pub use incremental::{FallbackReason, IncrementalConfig, IncrementalOutcome, IncrementalState};
pub use mapeq::MapState;
pub use result::{InfomapResult, KernelTimings};
