//! The map equation: codelength of a partitioned flow network.
//!
//! Rosvall & Bergstrom's map equation (paper Eq. 1) in its expanded,
//! directly computable form:
//!
//! ```text
//! L(M) = plogp(q) − 2·Σ_i plogp(q_i) + Σ_i plogp(q_i + p_i) − Σ_α plogp(p_α)
//! ```
//!
//! with `plogp(x) = x·log₂x`, `q_i` the exit probability of module `i`,
//! `q = Σ q_i`, `p_i` the total visit rate of module `i`, and `p_α`
//! per-node visit rates (the last term is partition-independent).
//! [`MapState`] maintains the module-level quantities and supports O(1)
//! move deltas given the accumulated in/out flows that `FindBestCommunity`
//! produces — exactly the role of the `calc(outFlowToNewMod,
//! inFlowFromMod)` call in Algorithm 1.
//!
//! # Teleportation
//!
//! Two conventions for the exit probability are supported
//! ([`TeleportMode`]):
//!
//! * **Unrecorded** (default, modern Infomap): teleportation only shapes
//!   the stationary visit rates; module exits count link flow alone,
//!   `q_i = Σ_{α∈i, β∉i} F(α→β)`.
//! * **Recorded** (the original Rosvall 2008 formulation the paper's
//!   Eq. 1 describes): the random teleport step is itself encoded, adding
//!   `τ·(n−n_i)/n·p_i` to each module's exit and scaling link exits by
//!   `(1−τ)`. Node *weights* (how many original vertices a supernode
//!   stands for) keep `n_i` exact across coarsening levels.

use asa_graph::{NodeId, Partition};
use serde::{Deserialize, Serialize};

use crate::flow::FlowNetwork;

/// `x · log₂x`, extended continuously with `plogp(0) = 0`.
#[inline]
pub fn plogp(x: f64) -> f64 {
    if x > 1e-300 {
        x * x.log2()
    } else {
        0.0
    }
}

/// How teleportation enters the codelength. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TeleportMode {
    /// Teleport steps are not encoded; exits are pure link flow.
    #[default]
    Unrecorded,
    /// Teleport steps are encoded with probability `tau` per step.
    Recorded {
        /// Teleportation probability τ.
        tau: f64,
    },
}

/// The flow summary of one candidate move, produced by the accumulation
/// device: a vertex's flow exchanged with one module.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModuleFlows {
    /// Σ flow from the vertex into members of the module.
    pub out_flow: f64,
    /// Σ flow from members of the module into the vertex.
    pub in_flow: f64,
}

/// Per-node quantities consumed by the move evaluation; see
/// [`FlowNetwork::node_summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSummary {
    /// Stationary visit rate `p_α`.
    pub flow: f64,
    /// Number of original vertices this node stands for (1 at the vertex
    /// level; member count for supernodes).
    pub weight: u64,
    /// Σ of outgoing arc flows (self-loops excluded).
    pub out_total: f64,
    /// Σ of incoming arc flows.
    pub in_total: f64,
}

/// Module-level map-equation state for one level of the hierarchy.
#[derive(Debug, Clone)]
pub struct MapState {
    mode: TeleportMode,
    /// Link exit flow per module (teleport-free part).
    mod_link_exit: Vec<f64>,
    /// Total visit rate `p_i` per module.
    mod_flow: Vec<f64>,
    /// Original-vertex count per module.
    mod_nodes: Vec<u64>,
    /// Total original-vertex count `n`.
    total_nodes: u64,
    /// `q = Σ_i q_i` over *effective* exits.
    total_exit: f64,
    /// Partition-constant `Σ_α plogp(p_α)`.
    node_plogp: f64,
}

impl MapState {
    /// Builds module statistics for `partition` over `flow`, with the
    /// node-level term `Σ_α plogp(p_α)` taken from `flow` itself and
    /// unrecorded teleportation.
    ///
    /// When optimizing a *coarse* level of the hierarchy, use
    /// [`MapState::with_node_term`] and pass the original vertex-level term:
    /// a supernode stands for many vertices, so the within-module codebook
    /// must still be priced at vertex granularity. The term is
    /// partition-constant either way, so move deltas are unaffected — only
    /// reported absolute codelengths differ.
    ///
    /// The partition must be compact; module ids index the state arrays.
    pub fn new(flow: &FlowNetwork, partition: &Partition) -> Self {
        let node_plogp = flow.node_flows().iter().copied().map(plogp).sum();
        Self::with_options(flow, partition, node_plogp, TeleportMode::Unrecorded)
    }

    /// Like [`MapState::new`] but with an explicit node-level term (see
    /// there for when this matters).
    pub fn with_node_term(flow: &FlowNetwork, partition: &Partition, node_plogp: f64) -> Self {
        Self::with_options(flow, partition, node_plogp, TeleportMode::Unrecorded)
    }

    /// Full-control constructor: explicit node term and teleport mode.
    pub fn with_options(
        flow: &FlowNetwork,
        partition: &Partition,
        node_plogp: f64,
        mode: TeleportMode,
    ) -> Self {
        assert_eq!(flow.num_nodes(), partition.len());
        if let TeleportMode::Recorded { tau } = mode {
            assert!((0.0..1.0).contains(&tau), "tau must be in [0,1)");
        }
        let m = partition.num_communities();
        let mut mod_link_exit = vec![0.0f64; m];
        let mut mod_flow = vec![0.0f64; m];
        let mut mod_nodes = vec![0u64; m];
        for u in 0..flow.num_nodes() as u32 {
            let cu = partition.community_of(u) as usize;
            mod_flow[cu] += flow.node_flow(u);
            mod_nodes[cu] += flow.node_weight(u);
            for (v, f) in flow.out_arcs(u) {
                if partition.community_of(v) as usize != cu {
                    mod_link_exit[cu] += f;
                }
            }
        }
        let total_nodes: u64 = mod_nodes.iter().sum();
        let mut state = Self {
            mode,
            mod_link_exit,
            mod_flow,
            mod_nodes,
            total_nodes,
            total_exit: 0.0,
            node_plogp,
        };
        state.total_exit = (0..m)
            .map(|i| {
                state.effective_exit(
                    state.mod_link_exit[i],
                    state.mod_flow[i],
                    state.mod_nodes[i],
                )
            })
            .sum();
        state
    }

    /// Effective exit probability of a module with link exit `link`, visit
    /// rate `p`, and `n_i` member vertices.
    #[inline]
    fn effective_exit(&self, link: f64, p: f64, n_i: u64) -> f64 {
        match self.mode {
            TeleportMode::Unrecorded => link,
            TeleportMode::Recorded { tau } => {
                let n = self.total_nodes.max(1) as f64;
                tau * ((self.total_nodes - n_i) as f64 / n) * p + (1.0 - tau) * link
            }
        }
    }

    /// Number of module slots (some may be empty after moves).
    pub fn num_modules(&self) -> usize {
        self.mod_link_exit.len()
    }

    /// The teleport convention in use.
    pub fn mode(&self) -> TeleportMode {
        self.mode
    }

    /// Effective exit probability of module `m`.
    pub fn exit(&self, m: u32) -> f64 {
        self.effective_exit(
            self.mod_link_exit[m as usize],
            self.mod_flow[m as usize],
            self.mod_nodes[m as usize],
        )
    }

    /// Link-only exit flow of module `m` (excludes any teleport term).
    pub fn link_exit(&self, m: u32) -> f64 {
        self.mod_link_exit[m as usize]
    }

    /// Hints the cache hierarchy to pull module `m`'s entries in the three
    /// per-module arrays the candidate evaluation reads.
    #[inline]
    pub fn prefetch_module(&self, m: u32) {
        let i = m as usize;
        if i < self.mod_link_exit.len() {
            crate::kernel::prefetch_read(&self.mod_link_exit[i]);
            crate::kernel::prefetch_read(&self.mod_flow[i]);
            crate::kernel::prefetch_read(&self.mod_nodes[i]);
        }
    }

    /// Total visit rate of module `m`.
    pub fn flow(&self, m: u32) -> f64 {
        self.mod_flow[m as usize]
    }

    /// Original-vertex count of module `m`.
    pub fn nodes(&self, m: u32) -> u64 {
        self.mod_nodes[m as usize]
    }

    /// Total effective exit flow `q`.
    pub fn total_exit(&self) -> f64 {
        self.total_exit
    }

    /// Current codelength `L(M)` in bits.
    pub fn codelength(&self) -> f64 {
        let mut exit_sum = 0.0;
        let mut combined = 0.0;
        for i in 0..self.mod_link_exit.len() {
            let q = self.effective_exit(self.mod_link_exit[i], self.mod_flow[i], self.mod_nodes[i]);
            exit_sum += plogp(q);
            combined += plogp(q + self.mod_flow[i]);
        }
        plogp(self.total_exit) - 2.0 * exit_sum + combined - self.node_plogp
    }

    /// The `(link_exit', p', n')` of both touched modules after moving a
    /// node, shared by [`MapState::delta_move`] and [`MapState::apply_move`].
    #[allow(clippy::type_complexity)]
    fn moved_stats(
        &self,
        old: u32,
        new: u32,
        node: &NodeSummary,
        flows_old: ModuleFlows,
        flows_new: ModuleFlows,
    ) -> ((f64, f64, u64), (f64, f64, u64)) {
        let (old, new) = (old as usize, new as usize);
        // Leaving `old`: the node's arcs to outside-old stop exiting from
        // old, while old's arcs into the node start exiting.
        let link_o =
            self.mod_link_exit[old] - (node.out_total - flows_old.out_flow) + flows_old.in_flow;
        // Joining `new`: the node's arcs to outside-new now exit from new,
        // minus its arcs into new members; new's arcs into the node stop
        // exiting.
        let link_n =
            self.mod_link_exit[new] + (node.out_total - flows_new.out_flow) - flows_new.in_flow;
        (
            (
                link_o,
                self.mod_flow[old] - node.flow,
                self.mod_nodes[old] - node.weight,
            ),
            (
                link_n,
                self.mod_flow[new] + node.flow,
                self.mod_nodes[new] + node.weight,
            ),
        )
    }

    /// Codelength change (bits) of moving `node` from module `old` to
    /// module `new`, where `flows_old` / `flows_new` are its accumulated
    /// flow exchanges with those modules (the node's own self-arcs are
    /// excluded by construction). Negative = improvement.
    pub fn delta_move(
        &self,
        old: u32,
        new: u32,
        node: &NodeSummary,
        flows_old: ModuleFlows,
        flows_new: ModuleFlows,
    ) -> f64 {
        if old == new {
            return 0.0;
        }
        let (q_o, p_o, n_o) = (
            self.mod_link_exit[old as usize],
            self.mod_flow[old as usize],
            self.mod_nodes[old as usize],
        );
        let (q_n, p_n, n_n) = (
            self.mod_link_exit[new as usize],
            self.mod_flow[new as usize],
            self.mod_nodes[new as usize],
        );
        let ((lo2, po2, no2), (ln2, pn2, nn2)) =
            self.moved_stats(old, new, node, flows_old, flows_new);

        let e_o = self.effective_exit(q_o, p_o, n_o);
        let e_n = self.effective_exit(q_n, p_n, n_n);
        let e_o2 = self.effective_exit(lo2, po2, no2);
        let e_n2 = self.effective_exit(ln2, pn2, nn2);
        let q_new = self.total_exit + (e_o2 - e_o) + (e_n2 - e_n);

        plogp(q_new)
            - plogp(self.total_exit)
            - 2.0 * (plogp(e_o2) - plogp(e_o))
            - 2.0 * (plogp(e_n2) - plogp(e_n))
            + plogp(e_o2 + po2)
            - plogp(e_o + p_o)
            + plogp(e_n2 + pn2)
            - plogp(e_n + p_n)
    }

    /// Applies the move that [`MapState::delta_move`] evaluated, updating
    /// module statistics in O(1).
    pub fn apply_move(
        &mut self,
        old: u32,
        new: u32,
        node: &NodeSummary,
        flows_old: ModuleFlows,
        flows_new: ModuleFlows,
    ) {
        if old == new {
            return;
        }
        let e_o = self.exit(old);
        let e_n = self.exit(new);
        let ((lo2, po2, no2), (ln2, pn2, nn2)) =
            self.moved_stats(old, new, node, flows_old, flows_new);
        self.mod_link_exit[old as usize] = lo2;
        self.mod_flow[old as usize] = po2;
        self.mod_nodes[old as usize] = no2;
        self.mod_link_exit[new as usize] = ln2;
        self.mod_flow[new as usize] = pn2;
        self.mod_nodes[new as usize] = nn2;
        self.total_exit += (self.exit(old) - e_o) + (self.exit(new) - e_n);
    }
}

/// Convenience: the codelength of `partition` on `flow` (builds a fresh
/// unrecorded-teleport [`MapState`]).
pub fn codelength(flow: &FlowNetwork, partition: &Partition) -> f64 {
    MapState::new(flow, partition).codelength()
}

/// One module's cached scan terms: epoch stamp plus the three values the
/// candidate evaluation needs. 32 bytes, so a lookup touches exactly one
/// cache line (the SoA layout this replaced paid up to four misses per
/// cold candidate).
#[derive(Debug, Clone, Copy, Default)]
#[repr(C)]
struct TermEntry {
    stamp: u64,
    /// Effective exit `e_n`.
    e: f64,
    /// `plogp(e_n)`.
    plogp_e: f64,
    /// `plogp(e_n + p_n)`.
    plogp_ep: f64,
}

/// Epoch-stamped cache of the candidate-module terms the scan re-derives
/// for every evaluation: a module's effective exit `e_n`, `plogp(e_n)`,
/// and `plogp(e_n + p_n)`. Within one sweep the [`MapState`] is frozen, so
/// these depend only on the module id — the dominant `plogp` (log₂) cost
/// of the scan is paid once per touched module per sweep chunk instead of
/// once per candidate evaluation.
///
/// Also memoizes `plogp(q)` of the frozen total exit (identical for every
/// vertex of a chunk) via [`ModTermCache::plogp_total_exit`].
#[derive(Debug, Default)]
pub struct ModTermCache {
    entries: Vec<TermEntry>,
    epoch: u64,
    /// `plogp(total_exit)` for this epoch (`f64::NAN` = unset).
    plogp_q: f64,
    /// Modules whose terms were computed this epoch (lifetime count).
    fills: u64,
    /// Cache-hit lookups (lifetime count).
    hits: u64,
}

impl ModTermCache {
    /// Invalidates every cached term and admits module ids `0..modules`.
    /// Call once per checkout against a frozen [`MapState`]; O(1) except
    /// for growth (the epoch is 64-bit, so it never wraps in practice).
    pub fn begin(&mut self, modules: usize) {
        if self.entries.len() < modules {
            self.entries.resize(modules, TermEntry::default());
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.entries.fill(TermEntry::default());
            self.epoch = 1;
        }
        self.plogp_q = f64::NAN;
    }

    /// `plogp(q)` of the frozen state, computed once per epoch.
    #[inline]
    pub fn plogp_total_exit(&mut self, state: &MapState) -> f64 {
        if self.plogp_q.is_nan() {
            self.plogp_q = plogp(state.total_exit);
        }
        self.plogp_q
    }

    /// `(e_n, plogp(e_n), plogp(e_n + p_n))` of module `m` under `state`,
    /// computed on first touch and replayed bit-identically afterwards
    /// (the fill calls the exact same pure functions the uncached scan
    /// would).
    #[inline]
    pub fn terms(&mut self, state: &MapState, m: u32) -> (f64, f64, f64) {
        let entry = &mut self.entries[m as usize];
        if entry.stamp != self.epoch {
            entry.stamp = self.epoch;
            let e_n = state.exit(m);
            entry.e = e_n;
            entry.plogp_e = plogp(e_n);
            entry.plogp_ep = plogp(e_n + state.mod_flow[m as usize]);
            self.fills += 1;
        } else {
            self.hits += 1;
        }
        (entry.e, entry.plogp_e, entry.plogp_ep)
    }

    /// Hints the cache hierarchy to pull module `m`'s entry line.
    #[inline]
    pub fn prefetch(&self, m: u32) {
        if let Some(e) = self.entries.get(m as usize) {
            crate::kernel::prefetch_read(e);
        }
    }

    /// Lifetime `(fills, hits)` of the term cache.
    pub fn stats(&self) -> (u64, u64) {
        (self.fills, self.hits)
    }
}

/// Hoisted per-vertex state for one candidate scan: everything in
/// [`MapState::delta_move`] that depends only on the vertex's current
/// module and its accumulated `flows_old` is computed once here, so each
/// candidate evaluation pays exactly three `plogp` calls (for `q_new`,
/// `e_n2`, and `e_n2 + p_n2`) plus cached lookups.
///
/// **Bit-exactness contract:** [`MoveEval::delta`] reproduces
/// [`MapState::delta_move`]'s result to the last ULP. Every arithmetic
/// operation of the original expression tree is performed on the same
/// operands in the same association order — constants are hoisted as
/// precomputed subexpression *values*, never re-associated — which the
/// `move_eval_bit_identical_to_delta_move` test locks down.
#[derive(Debug, Clone, Copy)]
pub struct MoveEval {
    old: u32,
    node_out_total: f64,
    node_flow: f64,
    node_weight: u64,
    /// `plogp(q)` of the frozen state.
    plogp_total_exit: f64,
    /// `2·(plogp(e_o2) − plogp(e_o))`.
    old_exit_pair: f64,
    /// `q + (e_o2 − e_o)`: the candidate-independent part of `q_new`.
    base_q: f64,
    /// `e_o` under the frozen state (needed to rebuild `q_new` exactly).
    e_o: f64,
    e_o2: f64,
    /// `plogp(e_o2 + p_o2)`.
    plogp_old_after: f64,
    /// `plogp(e_o + p_o)`.
    plogp_old_before: f64,
}

/// The old-module terms a [`MoveEval`] freezes before scanning candidates:
/// pure functions of the frozen `MapState`, so they can be computed fresh
/// or served from a [`ModTermCache`] with bit-identical results.
#[derive(Clone, Copy, Debug)]
struct FrozenTerms {
    e_o: f64,
    plogp_e_o: f64,
    plogp_old_before: f64,
    plogp_total_exit: f64,
}

impl MoveEval {
    /// Hoists the old-module terms for vertex `node` currently in module
    /// `old` with accumulated exchange `flows_old`.
    pub fn new(state: &MapState, old: u32, node: &NodeSummary, flows_old: ModuleFlows) -> Self {
        let e_o = state.exit(old);
        Self::with_frozen_terms(
            state,
            old,
            node,
            flows_old,
            FrozenTerms {
                e_o,
                plogp_e_o: plogp(e_o),
                plogp_old_before: plogp(e_o + state.mod_flow[old as usize]),
                plogp_total_exit: plogp(state.total_exit),
            },
        )
    }

    /// [`MoveEval::new`] with the frozen old-module terms and
    /// `plogp(total_exit)` served from the per-chunk [`ModTermCache`]
    /// instead of recomputed. The cached values come from the exact same
    /// pure functions over the same frozen state, so the hoisted terms —
    /// and therefore every delta — are bit-identical.
    pub fn new_cached(
        state: &MapState,
        cache: &mut ModTermCache,
        old: u32,
        node: &NodeSummary,
        flows_old: ModuleFlows,
    ) -> Self {
        let (e_o, plogp_e_o, plogp_old_before) = cache.terms(state, old);
        let plogp_total_exit = cache.plogp_total_exit(state);
        Self::with_frozen_terms(
            state,
            old,
            node,
            flows_old,
            FrozenTerms {
                e_o,
                plogp_e_o,
                plogp_old_before,
                plogp_total_exit,
            },
        )
    }

    fn with_frozen_terms(
        state: &MapState,
        old: u32,
        node: &NodeSummary,
        flows_old: ModuleFlows,
        terms: FrozenTerms,
    ) -> Self {
        let FrozenTerms {
            e_o,
            plogp_e_o,
            plogp_old_before,
            plogp_total_exit,
        } = terms;
        let o = old as usize;
        let (q_o, p_o, n_o) = (
            state.mod_link_exit[o],
            state.mod_flow[o],
            state.mod_nodes[o],
        );
        debug_assert_eq!(e_o.to_bits(), state.effective_exit(q_o, p_o, n_o).to_bits());
        let link_o = q_o - (node.out_total - flows_old.out_flow) + flows_old.in_flow;
        let po2 = p_o - node.flow;
        let no2 = n_o - node.weight;
        let e_o2 = state.effective_exit(link_o, po2, no2);
        MoveEval {
            old,
            node_out_total: node.out_total,
            node_flow: node.flow,
            node_weight: node.weight,
            plogp_total_exit,
            old_exit_pair: 2.0 * (plogp(e_o2) - plogp_e_o),
            base_q: state.total_exit + (e_o2 - e_o),
            e_o,
            e_o2,
            plogp_old_after: plogp(e_o2 + po2),
            plogp_old_before,
        }
    }

    /// The module the vertex currently belongs to.
    #[inline]
    pub fn old_module(&self) -> u32 {
        self.old
    }

    /// Codelength delta (bits) of moving into module `new` with exchange
    /// `flows_new`; bit-identical to [`MapState::delta_move`].
    #[inline]
    pub fn delta(
        &self,
        state: &MapState,
        cache: &mut ModTermCache,
        new: u32,
        flows_new: ModuleFlows,
    ) -> f64 {
        debug_assert_ne!(new, self.old);
        let n = new as usize;
        let (e_n, plogp_e_n, plogp_e_n_p_n) = cache.terms(state, new);
        let link_n =
            state.mod_link_exit[n] + (self.node_out_total - flows_new.out_flow) - flows_new.in_flow;
        let pn2 = state.mod_flow[n] + self.node_flow;
        let nn2 = state.mod_nodes[n] + self.node_weight;
        let e_n2 = state.effective_exit(link_n, pn2, nn2);
        // `q_new = q + (e_o2 − e_o) + (e_n2 − e_n)`: the first addition is
        // hoisted into `base_q`; the association order matches
        // `delta_move` exactly.
        let q_new = self.base_q + (e_n2 - e_n);
        debug_assert_eq!(
            q_new.to_bits(),
            (state.total_exit + (self.e_o2 - self.e_o) + (e_n2 - e_n)).to_bits()
        );
        plogp(q_new) - self.plogp_total_exit - self.old_exit_pair - 2.0 * (plogp(e_n2) - plogp_e_n)
            + self.plogp_old_after
            - self.plogp_old_before
            + plogp(e_n2 + pn2)
            - plogp_e_n_p_n
    }
}

/// Accumulates, without any device model, the flow exchange between vertex
/// `u` and module `m` under `partition`. Test/oracle helper mirroring what
/// the accumulation device computes.
pub fn module_flows_of(
    flow: &FlowNetwork,
    partition: &Partition,
    u: NodeId,
    m: u32,
) -> ModuleFlows {
    let mut mf = ModuleFlows::default();
    for (v, f) in flow.out_arcs(u) {
        if partition.community_of(v) == m {
            mf.out_flow += f;
        }
    }
    for (v, f) in flow.in_arcs(u) {
        if partition.community_of(v) == m {
            mf.in_flow += f;
        }
    }
    mf
}

/// [`module_flows_of`] for two distinct modules in a single arc traversal.
/// Per-module additions happen in arc order, exactly as in the one-module
/// helper, so each returned sum is bit-identical to calling
/// [`module_flows_of`] twice at half the traversal cost.
pub fn module_flows_pair(
    flow: &FlowNetwork,
    partition: &Partition,
    u: NodeId,
    a: u32,
    b: u32,
) -> (ModuleFlows, ModuleFlows) {
    debug_assert_ne!(a, b, "modules must differ");
    let mut fa = ModuleFlows::default();
    let mut fb = ModuleFlows::default();
    for (v, f) in flow.out_arcs(u) {
        let c = partition.community_of(v);
        if c == a {
            fa.out_flow += f;
        } else if c == b {
            fb.out_flow += f;
        }
    }
    if flow.is_symmetric() {
        // The in-arc CSR is byte-identical to the out-arc CSR, so the in
        // sums replay the exact same additions — mirror instead of
        // re-traversing.
        fa.in_flow = fa.out_flow;
        fb.in_flow = fb.out_flow;
        return (fa, fb);
    }
    for (v, f) in flow.in_arcs(u) {
        let c = partition.community_of(v);
        if c == a {
            fa.in_flow += f;
        } else if c == b {
            fb.in_flow += f;
        }
    }
    (fa, fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use asa_graph::generators::planted_partition;
    use asa_graph::generators::PlantedConfig;
    use asa_graph::GraphBuilder;

    fn two_triangles_flow() -> FlowNetwork {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        FlowNetwork::from_graph(&b.build(), &InfomapConfig::default())
    }

    fn check_delta_everywhere(flow: &FlowNetwork, partition: &Partition, mode: TeleportMode) {
        let node_plogp: f64 = flow.node_flows().iter().copied().map(plogp).sum();
        let state = MapState::with_options(flow, partition, node_plogp, mode);
        let l0 = state.codelength();
        let m = partition.num_communities() as u32;
        for u in 0..flow.num_nodes() as u32 {
            let old = partition.community_of(u);
            for new in 0..m {
                if new == old {
                    continue;
                }
                let delta = state.delta_move(
                    old,
                    new,
                    &flow.node_summary(u),
                    module_flows_of(flow, partition, u, old),
                    module_flows_of(flow, partition, u, new),
                );
                let mut moved = partition.clone();
                moved.assign(u, new);
                let l1 = MapState::with_options(flow, &moved, node_plogp, mode).codelength();
                assert!(
                    (delta - (l1 - l0)).abs() < 1e-9,
                    "{mode:?} u={u} {old}->{new}: delta {delta} vs recompute {}",
                    l1 - l0
                );
            }
        }
    }

    #[test]
    fn plogp_properties() {
        assert_eq!(plogp(0.0), 0.0);
        assert_eq!(plogp(1.0), 0.0);
        assert!((plogp(0.5) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn good_partition_beats_bad() {
        let flow = two_triangles_flow();
        let good = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let bad = Partition::from_labels(vec![0, 1, 0, 1, 0, 1]);
        let singletons = Partition::singletons(6);
        let l_good = codelength(&flow, &good);
        let l_bad = codelength(&flow, &bad);
        let l_single = codelength(&flow, &singletons);
        assert!(l_good < l_bad, "{l_good} !< {l_bad}");
        assert!(l_good < l_single, "{l_good} !< {l_single}");
    }

    #[test]
    fn one_module_codelength_is_node_entropy() {
        let flow = two_triangles_flow();
        let uniform = Partition::uniform(6);
        // q = 0: L reduces to -Σ plogp(p_α) = H(p), the entropy of visit
        // rates.
        let entropy: f64 = -flow.node_flows().iter().copied().map(plogp).sum::<f64>();
        assert!((codelength(&flow, &uniform) - entropy).abs() < 1e-12);
    }

    #[test]
    fn delta_matches_recomputation_unrecorded() {
        let flow = two_triangles_flow();
        let partition = Partition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        check_delta_everywhere(&flow, &partition, TeleportMode::Unrecorded);
    }

    #[test]
    fn delta_matches_recomputation_recorded() {
        let flow = two_triangles_flow();
        let partition = Partition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        check_delta_everywhere(&flow, &partition, TeleportMode::Recorded { tau: 0.15 });
    }

    #[test]
    fn delta_matches_on_directed_random_graph_both_modes() {
        let mut b = GraphBuilder::directed(10);
        // Deterministic pseudo-random digraph.
        let mut x = 9u64;
        for _ in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 10) as u32;
            let v = ((x >> 13) % 10) as u32;
            if u != v {
                b.add_edge(u, v, 1.0 + (x % 3) as f64);
            }
        }
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let labels: Vec<u32> = (0..10).map(|i| i % 3).collect();
        let partition = Partition::from_labels(labels);
        check_delta_everywhere(&flow, &partition, TeleportMode::Unrecorded);
        check_delta_everywhere(&flow, &partition, TeleportMode::Recorded { tau: 0.15 });
    }

    #[test]
    fn recorded_with_tau_zero_equals_unrecorded() {
        let flow = two_triangles_flow();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let node_plogp: f64 = flow.node_flows().iter().copied().map(plogp).sum();
        let a = MapState::with_options(&flow, &p, node_plogp, TeleportMode::Unrecorded);
        let b = MapState::with_options(&flow, &p, node_plogp, TeleportMode::Recorded { tau: 0.0 });
        assert!((a.codelength() - b.codelength()).abs() < 1e-12);
    }

    #[test]
    fn recorded_teleport_raises_exit_flow() {
        let flow = two_triangles_flow();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let node_plogp: f64 = flow.node_flows().iter().copied().map(plogp).sum();
        let unrec = MapState::with_options(&flow, &p, node_plogp, TeleportMode::Unrecorded);
        let rec =
            MapState::with_options(&flow, &p, node_plogp, TeleportMode::Recorded { tau: 0.15 });
        // Encoding teleport jumps adds exit probability to every module.
        assert!(rec.total_exit() > unrec.total_exit());
        assert!(rec.exit(0) > unrec.exit(0));
        // And the per-module member counts are tracked.
        assert_eq!(rec.nodes(0), 3);
        assert_eq!(rec.nodes(1), 3);
    }

    #[test]
    fn apply_move_keeps_state_consistent_both_modes() {
        let flow = two_triangles_flow();
        for mode in [
            TeleportMode::Unrecorded,
            TeleportMode::Recorded { tau: 0.2 },
        ] {
            let mut partition = Partition::from_labels(vec![0, 0, 1, 1, 2, 2]);
            let node_plogp: f64 = flow.node_flows().iter().copied().map(plogp).sum();
            let mut state = MapState::with_options(&flow, &partition, node_plogp, mode);
            // Move vertex 2 into module 0 (its triangle).
            let (u, old, new) = (2u32, 1u32, 0u32);
            state.apply_move(
                old,
                new,
                &flow.node_summary(u),
                module_flows_of(&flow, &partition, u, old),
                module_flows_of(&flow, &partition, u, new),
            );
            partition.assign(u, new);
            let fresh = MapState::with_options(&flow, &partition, node_plogp, mode);
            assert!(
                (state.codelength() - fresh.codelength()).abs() < 1e-9,
                "{mode:?} codelength drift"
            );
            assert!((state.total_exit() - fresh.total_exit()).abs() < 1e-12);
            for m in 0..3 {
                assert!((state.exit(m) - fresh.exit(m)).abs() < 1e-12);
                assert!((state.flow(m) - fresh.flow(m)).abs() < 1e-12);
                assert_eq!(state.nodes(m), fresh.nodes(m));
            }
        }
    }

    #[test]
    fn move_eval_bit_identical_to_delta_move() {
        // Undirected (symmetric flows) and directed pseudo-random graphs,
        // both teleport modes, every (vertex, candidate) pair — and a
        // second pass per vertex so cached term replay is exercised too.
        let mut b = GraphBuilder::directed(12);
        let mut x = 17u64;
        for _ in 0..60 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % 12) as u32;
            let v = ((x >> 13) % 12) as u32;
            if u != v {
                b.add_edge(u, v, 1.0 + (x % 5) as f64);
            }
        }
        let directed = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let dir_part = Partition::from_labels((0..12).map(|i| i % 4).collect());
        let cases = [
            (
                two_triangles_flow(),
                Partition::from_labels(vec![0, 0, 1, 1, 2, 2]),
            ),
            (directed, dir_part),
        ];
        for (flow, partition) in &cases {
            let node_plogp: f64 = flow.node_flows().iter().copied().map(plogp).sum();
            for mode in [
                TeleportMode::Unrecorded,
                TeleportMode::Recorded { tau: 0.15 },
            ] {
                let state = MapState::with_options(flow, partition, node_plogp, mode);
                let m = partition.num_communities() as u32;
                let mut cache = ModTermCache::default();
                cache.begin(state.num_modules());
                for u in 0..flow.num_nodes() as u32 {
                    let old = partition.community_of(u);
                    let node = flow.node_summary(u);
                    let flows_old = module_flows_of(flow, partition, u, old);
                    let eval = MoveEval::new(&state, old, &node, flows_old);
                    assert_eq!(eval.old_module(), old);
                    for pass in 0..2 {
                        for new in 0..m {
                            if new == old {
                                continue;
                            }
                            let mf = module_flows_of(flow, partition, u, new);
                            let a = state.delta_move(old, new, &node, flows_old, mf);
                            let b = eval.delta(&state, &mut cache, new, mf);
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{mode:?} u={u} {old}->{new} pass={pass}: {a} vs {b}"
                            );
                        }
                    }
                }
                let (fills, hits) = cache.stats();
                assert!(
                    fills > 0 && hits > 0,
                    "cache never replayed: {fills}/{hits}"
                );
            }
        }
    }

    #[test]
    fn mod_term_cache_invalidates_on_begin() {
        let flow = two_triangles_flow();
        let p1 = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let p2 = Partition::from_labels(vec![0, 1, 0, 1, 0, 1]);
        let s1 = MapState::new(&flow, &p1);
        let s2 = MapState::new(&flow, &p2);
        let mut cache = ModTermCache::default();
        cache.begin(s1.num_modules());
        let t1 = cache.terms(&s1, 0);
        cache.begin(s2.num_modules());
        let t2 = cache.terms(&s2, 0);
        assert_eq!(t2.0.to_bits(), s2.exit(0).to_bits());
        assert_ne!(t1.0.to_bits(), t2.0.to_bits(), "stale term survived begin");
    }

    #[test]
    fn ground_truth_near_optimal_on_planted_graph() {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 4,
                community_size: 30,
                k_in: 12.0,
                k_out: 1.0,
            },
            3,
        );
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let l_truth = codelength(&flow, &truth);
        let l_single = codelength(&flow, &Partition::singletons(g.num_nodes()));
        let l_uniform = codelength(&flow, &Partition::uniform(g.num_nodes()));
        assert!(l_truth < l_single);
        assert!(l_truth < l_uniform);
    }
}
