//! Result and timing types.

use std::time::Duration;

use asa_graph::Partition;
use serde::{Deserialize, Serialize};

/// Wall-clock time per kernel, mirroring the paper's Fig. 2a breakdown.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct KernelTimings {
    /// PageRank / flow-model construction.
    pub pagerank: Duration,
    /// All `FindBestCommunity` sweeps (vertex- and supernode-level).
    pub find_best: Duration,
    /// All `Convert2SuperNode` aggregations.
    pub convert: Duration,
    /// All `UpdateMembers` projections.
    pub update: Duration,
}

impl KernelTimings {
    /// Total across kernels.
    pub fn total(&self) -> Duration {
        self.pagerank + self.find_best + self.convert + self.update
    }

    /// Fraction of total time spent in `FindBestCommunity` (the paper
    /// reports 70–90%).
    pub fn find_best_share(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.find_best.as_secs_f64() / total
        }
    }
}

/// Statistics of one hierarchy level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelInfo {
    /// Nodes (vertices or supernodes) at this level.
    pub nodes: usize,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Total moves applied.
    pub moves: usize,
    /// Codelength when the level started.
    pub codelength_before: f64,
    /// Codelength when the level converged.
    pub codelength_after: f64,
    /// Duration of each sweep, in seconds (Table III/IV's per-iteration
    /// rows come from the level-0 entries).
    pub sweep_seconds: Vec<f64>,
    /// Active vertices per sweep.
    pub sweep_active: Vec<usize>,
    /// True for a fine-tuning pass over original vertices (as opposed to
    /// a multilevel phase over vertices/supernodes).
    pub refinement: bool,
}

/// Output of a full Infomap run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfomapResult {
    /// Final community assignment over the original vertices.
    pub partition: Partition,
    /// Final codelength `L(M)` in bits.
    pub codelength: f64,
    /// Codelength of the all-singletons partition (the starting point).
    pub initial_codelength: f64,
    /// Per-level statistics.
    pub levels: Vec<LevelInfo>,
    /// The module hierarchy: vertex→module assignment after each
    /// aggregation level, coarsest last (equals [`InfomapResult::partition`]
    /// when the final level applied no further merges). Empty when the
    /// vertex level already failed to merge anything.
    pub level_partitions: Vec<Partition>,
    /// Wall-clock kernel breakdown.
    pub timings: KernelTimings,
    /// Whether a [`crate::cancel::CancelToken`] stopped the run at a sweep
    /// boundary before convergence. The partition is still complete and
    /// `codelength` describes it; it is the best answer found within the
    /// allotted budget. Always `false` for uncancellable entry points.
    pub interrupted: bool,
}

impl InfomapResult {
    /// Number of detected communities.
    pub fn num_communities(&self) -> usize {
        self.partition.num_communities()
    }

    /// Number of aggregation levels that merged modules.
    pub fn hierarchy_depth(&self) -> usize {
        self.level_partitions.len()
    }

    /// Compression relative to singletons: `1 − L_final / L_initial`.
    pub fn compression(&self) -> f64 {
        if self.initial_codelength == 0.0 {
            0.0
        } else {
            1.0 - self.codelength / self.initial_codelength
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_shares() {
        let t = KernelTimings {
            pagerank: Duration::from_millis(100),
            find_best: Duration::from_millis(800),
            convert: Duration::from_millis(50),
            update: Duration::from_millis(50),
        };
        assert_eq!(t.total(), Duration::from_millis(1000));
        assert!((t.find_best_share() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn zero_timings_safe() {
        let t = KernelTimings::default();
        assert_eq!(t.find_best_share(), 0.0);
    }
}
