//! Local-move optimization: sweeps of `FindBestCommunity` over the vertex
//! set, HyPC-Map style.
//!
//! Each sweep (= one "iteration" in the paper's Tables III/IV) evaluates
//! every *active* vertex against a frozen snapshot of the module
//! assignment — that is the parallel phase — then applies the collected
//! moves sequentially, re-validating each delta against the live state so
//! the codelength decreases monotonically even when parallel decisions
//! were made on stale data. After a sweep, only vertices adjacent to an
//! applied move stay active, which is why per-iteration runtime shrinks
//! across iterations exactly as the paper's Table III shows.

use std::sync::Mutex;

use asa_graph::{NodeId, Partition};
use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{EventSink, NullSink};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

use crate::config::AccumulatorKind;
use crate::find_best::{find_best_community, FindBestScratch, MoveDecision};
use crate::flow::FlowNetwork;
use crate::kernel::{
    self, find_best_community_vec, find_best_community_vec_timed, DualSpa, KernelPhaseTimes,
};
use crate::mapeq::{module_flows_pair, MapState, ModTermCache, ModuleFlows};

/// Host-speed accumulator for uninstrumented runs: an `FxHashMap` with no
/// event emission. This is what the *algorithm* uses when we only care
/// about the answer (and about wall-clock kernel timings, Fig. 2a).
#[derive(Debug, Default)]
pub struct FastAccumulator {
    map: FxHashMap<u32, f64>,
}

impl FlowAccumulator for FastAccumulator {
    fn begin<S: EventSink>(&mut self, _sink: &mut S) {
        self.map.clear();
    }

    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, _sink: &mut S) {
        *self.map.entry(key).or_insert(0.0) += value;
    }

    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, _sink: &mut S) {
        out.clear();
        out.extend(self.map.drain());
    }

    fn name(&self) -> &'static str {
        "fast-host"
    }
}

/// Software sparse accumulator (SPA): a dense value array indexed directly
/// by module id, an epoch-stamp array marking which slots are live this
/// round, and a touched list for gathering. `accumulate` is one stamped
/// array write — no hashing, no probing — which is why it wins whenever
/// the dense arrays fit in memory (and mostly in cache). `begin` is O(1):
/// advancing the epoch invalidates every stale slot at once.
///
/// Capacity must cover the largest key accumulated; callers size it to the
/// current level's node count (module labels are node ids before
/// compaction).
#[derive(Debug, Default)]
pub struct SpaAccumulator {
    values: Vec<f64>,
    stamp: Vec<u32>,
    touched: Vec<u32>,
    epoch: u32,
}

impl SpaAccumulator {
    /// An accumulator admitting keys `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut spa = Self::default();
        spa.ensure_capacity(capacity);
        spa
    }

    /// Grows the dense arrays to admit keys `0..capacity`. Never shrinks,
    /// so coarse levels reuse the vertex-level allocation.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.values.len() < capacity {
            self.values.resize(capacity, 0.0);
            self.stamp.resize(capacity, 0);
        }
    }

    /// Largest admissible key + 1.
    pub fn capacity(&self) -> usize {
        self.values.len()
    }

    fn next_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One reset every 2^32 rounds keeps stale stamps from aliasing
            // the restarted counter.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Whether `key` was accumulated since the last `begin`/`gather`.
    #[inline]
    fn live(&self, key: u32) -> bool {
        self.stamp[key as usize] == self.epoch
    }

    /// The accumulated value of `key` this round, or 0.0 if untouched.
    #[inline]
    fn value(&self, key: u32) -> f64 {
        if self.live(key) {
            self.values[key as usize]
        } else {
            0.0
        }
    }
}

impl FlowAccumulator for SpaAccumulator {
    #[inline]
    fn begin<S: EventSink>(&mut self, _sink: &mut S) {
        self.touched.clear();
        self.next_epoch();
    }

    #[inline]
    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, _sink: &mut S) {
        let k = key as usize;
        debug_assert!(k < self.values.len(), "SPA key {key} beyond capacity");
        if self.stamp[k] == self.epoch {
            self.values[k] += value;
        } else {
            self.stamp[k] = self.epoch;
            self.values[k] = value;
            self.touched.push(key);
        }
    }

    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, _sink: &mut S) {
        out.clear();
        out.extend(self.touched.iter().map(|&k| (k, self.values[k as usize])));
        self.touched.clear();
        // Invalidate the drained slots so accumulation may restart without
        // an intervening `begin`.
        self.next_epoch();
    }

    fn name(&self) -> &'static str {
        "spa-host"
    }
}

/// Per-worker reusable state for the SPA decision phase: the fused
/// dual-direction [`DualSpa`] (SoA lanes for both flow directions), the
/// per-module scan-term cache, and the decision output buffer. Checked out
/// of a [`ScratchPool`] per rayon chunk instead of being re-allocated.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    dual: DualSpa,
    cache: ModTermCache,
    decisions: Vec<MoveDecision>,
}

/// A checkout pool of [`WorkerScratch`]es shared across sweeps and levels.
/// Sized lazily: at most one scratch per concurrently running chunk ever
/// exists, and each is reused for the rest of the run.
#[derive(Debug, Default)]
pub struct ScratchPool {
    slots: Mutex<Vec<WorkerScratch>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn checkout(&self) -> WorkerScratch {
        use std::sync::atomic::Ordering;
        match self.slots.lock().unwrap().pop() {
            Some(ws) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ws
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                WorkerScratch::default()
            }
        }
    }

    fn restore(&self, scratch: WorkerScratch) {
        self.slots.lock().unwrap().push(scratch);
    }

    /// Lifetime `(hits, misses)` of the checkout fast path — a hit reuses a
    /// warmed-up [`WorkerScratch`], a miss allocates a fresh one.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Aggregated kernel counters over every pooled scratch: the SPA
    /// touched-list clears (`reset_calls`/`reset_entries` — the O(touched)
    /// discipline the obs layer asserts) and the scan-term cache's
    /// `(fills, hits)`. Query between sweeps, when all scratches are
    /// checked back in; checked-out scratches are not counted.
    pub fn kernel_stats(&self) -> KernelCounters {
        let slots = self.slots.lock().unwrap();
        let mut out = KernelCounters::default();
        for ws in slots.iter() {
            let (calls, entries) = ws.dual.reset_stats();
            let (fills, hits) = ws.cache.stats();
            out.spa_reset_calls += calls;
            out.spa_reset_entries += entries;
            out.term_cache_fills += fills;
            out.term_cache_hits += hits;
        }
        out
    }
}

/// Lifetime kernel-counter aggregate of a [`ScratchPool`]; see
/// [`ScratchPool::kernel_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Touched-list stamp clears (one per vertex evaluated).
    pub spa_reset_calls: u64,
    /// Stamp entries cleared — Σ touched-set sizes, proving resets are
    /// O(touched) rather than O(communities).
    pub spa_reset_entries: u64,
    /// Scan-term cache misses (terms computed).
    pub term_cache_fills: u64,
    /// Scan-term cache hits (terms replayed).
    pub term_cache_hits: u64,
}

/// Decides moves for a slice of vertices against frozen labels, using the
/// provided device, sink, and kernel scratch. Only improving decisions are
/// returned.
#[allow(clippy::too_many_arguments)]
pub fn decide_range<A: FlowAccumulator, S: EventSink>(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    vertices: &[NodeId],
    acc: &mut A,
    sink: &mut S,
    scratch: &mut FindBestScratch,
    out: &mut Vec<MoveDecision>,
) {
    for &u in vertices {
        let d = find_best_community(flow, labels, state, u, acc, sink, scratch);
        if d.best_module != labels[u as usize] {
            out.push(d);
        }
    }
}

fn decide_chunk_size(active_len: usize) -> usize {
    (active_len / (rayon::current_num_threads() * 8)).max(512)
}

/// The SPA fast-path kernel: `FindBestCommunity` for one vertex with the
/// out- and in-flow accumulations held in two dense [`SpaAccumulator`]s.
///
/// Bit-identical to [`find_best_community`] over any accumulator: per-key
/// additions happen in arc order (the same FP sequence as the hash path),
/// and the candidate modules are visited in ascending id — exactly the
/// order the generic kernel's sort + merge-join produces. What it *skips*
/// is the materialization: no `(module, flow)` pair lists, no two pair
/// sorts, no merge-join — just one u32 sort of the touched-module union
/// and direct dense-array reads.
pub fn find_best_community_spa(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    u: NodeId,
    out_acc: &mut SpaAccumulator,
    in_acc: &mut SpaAccumulator,
    keys: &mut Vec<u32>,
) -> MoveDecision {
    let my_module = labels[u as usize];
    let mut sink = NullSink;

    out_acc.begin(&mut sink);
    for (v, f) in flow.out_arcs(u) {
        out_acc.accumulate(labels[v as usize], f, &mut sink);
    }
    // On symmetric networks the in-arc stream is the out-arc stream, so
    // the per-module in-flow sums are the out sums bit-for-bit — skip the
    // second accumulation entirely.
    let symmetric = flow.is_symmetric();
    if !symmetric {
        in_acc.begin(&mut sink);
        for (v, f) in flow.in_arcs(u) {
            in_acc.accumulate(labels[v as usize], f, &mut sink);
        }
    }

    // Candidate modules: the union of touched keys, ascending.
    keys.clear();
    keys.extend_from_slice(&out_acc.touched);
    if !symmetric {
        for &k in &in_acc.touched {
            if !out_acc.live(k) {
                keys.push(k);
            }
        }
    }
    keys.sort_unstable();

    let mf_of = |m: u32| {
        let out_flow = out_acc.value(m);
        ModuleFlows {
            out_flow,
            in_flow: if symmetric { out_flow } else { in_acc.value(m) },
        }
    };
    let flows_old = mf_of(my_module);
    let node = flow.node_summary(u);

    let mut best = MoveDecision {
        vertex: u,
        best_module: my_module,
        delta: 0.0,
    };
    for &m in keys.iter() {
        if m == my_module {
            continue;
        }
        let mf = mf_of(m);
        let delta = state.delta_move(my_module, m, &node, flows_old, mf);
        // Tie-break deterministically on module id so parallel and
        // sequential schedules agree (mirrors the generic kernel exactly).
        let improves =
            delta < best.delta - 1e-15 || (delta < best.delta + 1e-15 && m < best.best_module);
        if improves && delta < -1e-15 {
            best.best_module = m;
            best.delta = delta;
        }
    }
    best
}

/// Parallel decision phase over the active set, with per-chunk
/// [`FastAccumulator`]s and no instrumentation — the hash-based reference
/// path the SPA fast path is benchmarked against. Deterministic: the
/// result is ordered by vertex id regardless of thread scheduling.
pub fn parallel_decide(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    active: &[NodeId],
) -> Vec<MoveDecision> {
    let chunk = decide_chunk_size(active.len());
    let mut decisions: Vec<MoveDecision> = active
        .par_chunks(chunk)
        .map(|vertices| {
            let mut acc = FastAccumulator::default();
            let mut sink = NullSink;
            let mut scratch = FindBestScratch::default();
            let mut out = Vec::new();
            decide_range(
                flow,
                labels,
                state,
                vertices,
                &mut acc,
                &mut sink,
                &mut scratch,
                &mut out,
            );
            out
        })
        .flatten()
        .collect();
    decisions.sort_unstable_by_key(|d| d.vertex);
    decisions
}

/// Parallel decision phase on the SPA fast path, running the vectorized
/// kernel ([`find_best_community_vec`]): every chunk checks a
/// [`WorkerScratch`] out of the pool, so no accumulator, lane buffer, or
/// decision buffer is allocated after warm-up. Produces the identical
/// decision stream as [`parallel_decide`] (per-vertex evaluations are
/// independent, per-key addition order matches the hash path, and the
/// final sort restores vertex order).
pub fn parallel_decide_spa(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    active: &[NodeId],
    pool: &ScratchPool,
) -> Vec<MoveDecision> {
    parallel_decide_spa_phased(flow, labels, state, active, pool, None)
}

/// [`parallel_decide_spa`] with optional per-phase wall-clock attribution
/// (`hostperf --kernel-breakdown`). Timing is chunk-local and flushed once
/// per chunk, so the untimed path is bit-for-bit the same code.
pub fn parallel_decide_spa_phased(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    active: &[NodeId],
    pool: &ScratchPool,
    phases: Option<&KernelPhaseTimes>,
) -> Vec<MoveDecision> {
    let chunk = decide_chunk_size(active.len());
    // Module labels index the state arrays; the level's module count bounds
    // every key the kernel accumulates.
    let capacity = state.num_modules();
    let simd = kernel::simd_active();
    let collected: Mutex<Vec<MoveDecision>> = Mutex::new(Vec::new());
    active.par_chunks(chunk).for_each(|vertices| {
        let mut ws = pool.checkout();
        ws.dual.ensure_capacity(capacity);
        ws.cache.begin(capacity);
        ws.decisions.clear();
        if let Some(times) = phases {
            let mut ns = (0u64, 0u64, 0u64);
            for (i, &u) in vertices.iter().enumerate() {
                kernel::prefetch_ahead(flow, labels, vertices, i);
                let d = find_best_community_vec_timed(
                    flow,
                    labels,
                    state,
                    u,
                    &mut ws.dual,
                    &mut ws.cache,
                    simd,
                    &mut ns,
                );
                if d.best_module != labels[u as usize] {
                    ws.decisions.push(d);
                }
            }
            times.add_ns(ns.0, ns.1, ns.2);
        } else {
            for (i, &u) in vertices.iter().enumerate() {
                kernel::prefetch_ahead(flow, labels, vertices, i);
                let d = find_best_community_vec(
                    flow,
                    labels,
                    state,
                    u,
                    &mut ws.dual,
                    &mut ws.cache,
                    simd,
                );
                if d.best_module != labels[u as usize] {
                    ws.decisions.push(d);
                }
            }
        }
        if !ws.decisions.is_empty() {
            collected.lock().unwrap().extend_from_slice(&ws.decisions);
        }
        pool.restore(ws);
    });
    let mut decisions = collected.into_inner().unwrap();
    decisions.sort_unstable_by_key(|d| d.vertex);
    decisions
}

/// Accumulator selection: the SPA path runs when requested, or (on `Auto`)
/// when the level's dense arrays fit the configured budget; anything else
/// falls back to the hash path.
pub fn parallel_decide_with(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    active: &[NodeId],
    kind: AccumulatorKind,
    spa_budget: usize,
    pool: &ScratchPool,
) -> Vec<MoveDecision> {
    let use_spa = match kind {
        AccumulatorKind::Spa => true,
        AccumulatorKind::Hash => false,
        AccumulatorKind::Auto => flow.num_nodes() <= spa_budget,
    };
    if use_spa {
        parallel_decide_spa(flow, labels, state, active, pool)
    } else {
        parallel_decide(flow, labels, state, active)
    }
}

/// Result of applying one sweep's decisions.
#[derive(Debug, Clone)]
pub struct AppliedMoves {
    /// Number of moves actually applied after re-validation.
    pub applied: usize,
    /// The vertices that moved.
    pub moved: Vec<NodeId>,
}

/// Applies decisions in vertex order, re-validating each against the live
/// state (decisions were made against a stale snapshot). A move is applied
/// only if it still improves by more than `min_improvement` bits.
pub fn apply_decisions(
    flow: &FlowNetwork,
    partition: &mut Partition,
    state: &mut MapState,
    decisions: &[MoveDecision],
    min_improvement: f64,
) -> AppliedMoves {
    let mut moved = Vec::new();
    for d in decisions {
        let old = partition.community_of(d.vertex);
        let new = d.best_module;
        if old == new {
            continue;
        }
        let (flows_old, flows_new) = module_flows_pair(flow, partition, d.vertex, old, new);
        let node = flow.node_summary(d.vertex);
        let delta = state.delta_move(old, new, &node, flows_old, flows_new);
        if delta < -min_improvement {
            state.apply_move(old, new, &node, flows_old, flows_new);
            partition.assign(d.vertex, new);
            moved.push(d.vertex);
        }
    }
    AppliedMoves {
        applied: moved.len(),
        moved,
    }
}

/// The active set for the next sweep: every moved vertex plus its in- and
/// out-neighbours (their best module may have changed), deduplicated and
/// sorted.
pub fn next_active(flow: &FlowNetwork, moved: &[NodeId]) -> Vec<NodeId> {
    let mut mark = Vec::new();
    let mut out = Vec::new();
    next_active_into(flow, moved, &mut mark, &mut out);
    out
}

/// [`next_active`] into caller-owned buffers: `mark` is the dedup bitmap
/// (must be all-false, which this function restores before returning, so a
/// buffer can be threaded through every sweep) and `out` receives the
/// sorted active set. O(touched log touched) instead of an O(n) scan, and
/// allocation-free once the buffers are warm.
pub fn next_active_into(
    flow: &FlowNetwork,
    moved: &[NodeId],
    mark: &mut Vec<bool>,
    out: &mut Vec<NodeId>,
) {
    if mark.len() < flow.num_nodes() {
        mark.resize(flow.num_nodes(), false);
    }
    out.clear();
    let push = |mark: &mut [bool], out: &mut Vec<NodeId>, v: NodeId| {
        if !mark[v as usize] {
            mark[v as usize] = true;
            out.push(v);
        }
    };
    for &u in moved {
        push(mark, out, u);
        for (v, _) in flow.out_arcs(u) {
            push(mark, out, v);
        }
        for (v, _) in flow.in_arcs(u) {
            push(mark, out, v);
        }
    }
    out.sort_unstable();
    for &u in out.iter() {
        mark[u as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use crate::mapeq::codelength;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::GraphBuilder;

    fn two_triangles_flow() -> FlowNetwork {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        FlowNetwork::from_graph(&b.build(), &InfomapConfig::default())
    }

    fn sweep_once(
        flow: &FlowNetwork,
        partition: &mut Partition,
        state: &mut MapState,
        active: &[NodeId],
    ) -> AppliedMoves {
        let labels = partition.labels().to_vec();
        let decisions = parallel_decide(flow, &labels, state, active);
        apply_decisions(flow, partition, state, &decisions, 1e-12)
    }

    #[test]
    fn sweeps_find_the_triangles() {
        let flow = two_triangles_flow();
        let mut partition = Partition::singletons(6);
        let mut state = MapState::new(&flow, &partition);
        let mut active: Vec<NodeId> = (0..6).collect();
        for _ in 0..10 {
            let l_before = state.codelength();
            let applied = sweep_once(&flow, &mut partition, &mut state, &active);
            assert!(state.codelength() <= l_before + 1e-12);
            if applied.applied == 0 {
                break;
            }
            active = next_active(&flow, &applied.moved);
        }
        partition.compact();
        assert_eq!(partition.num_communities(), 2);
        assert_eq!(partition.community_of(0), partition.community_of(1));
        assert_eq!(partition.community_of(0), partition.community_of(2));
        assert_eq!(partition.community_of(3), partition.community_of(4));
        assert_ne!(partition.community_of(0), partition.community_of(3));
    }

    #[test]
    fn codelength_monotone_on_planted_graph() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 40,
                k_in: 10.0,
                k_out: 1.5,
            },
            7,
        );
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let mut partition = Partition::singletons(g.num_nodes());
        let mut state = MapState::new(&flow, &partition);
        let mut active: Vec<NodeId> = (0..g.num_nodes() as u32).collect();
        let mut last = state.codelength();
        for _ in 0..15 {
            let applied = sweep_once(&flow, &mut partition, &mut state, &active);
            let now = state.codelength();
            assert!(now <= last + 1e-9, "codelength increased: {last} -> {now}");
            last = now;
            if applied.applied == 0 {
                break;
            }
            active = next_active(&flow, &applied.moved);
        }
        // Incremental state must agree with a fresh recomputation.
        let fresh = codelength(&flow, &partition);
        assert!((last - fresh).abs() < 1e-6, "drift: {last} vs {fresh}");
    }

    #[test]
    fn active_set_shrinks() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 4,
                community_size: 50,
                k_in: 12.0,
                k_out: 1.0,
            },
            5,
        );
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let mut partition = Partition::singletons(g.num_nodes());
        let mut state = MapState::new(&flow, &partition);
        let mut active: Vec<NodeId> = (0..g.num_nodes() as u32).collect();
        let mut sizes = vec![active.len()];
        for _ in 0..6 {
            let applied = sweep_once(&flow, &mut partition, &mut state, &active);
            if applied.applied == 0 {
                break;
            }
            active = next_active(&flow, &applied.moved);
            sizes.push(active.len());
        }
        // The workload must shrink substantially after the first sweeps —
        // this is what produces the decreasing per-iteration runtimes of
        // Table III.
        assert!(
            sizes.last().unwrap() < &sizes[0],
            "active set never shrank: {sizes:?}"
        );
    }

    #[test]
    fn spa_accumulator_contract() {
        use asa_simarch::accum::OracleAccumulator;
        let mut spa = SpaAccumulator::with_capacity(8);
        let mut oracle = OracleAccumulator::default();
        let mut sink = NullSink;
        for round in 0..3 {
            spa.begin(&mut sink);
            oracle.begin(&mut sink);
            for (k, v) in [(4u32, 1.0), (2, 0.5), (4, 2.0), (7, 0.25), (2, 0.125)] {
                let k = (k + round) % 8;
                spa.accumulate(k, v, &mut sink);
                oracle.accumulate(k, v, &mut sink);
            }
            let mut a = Vec::new();
            let mut b = Vec::new();
            spa.gather(&mut a, &mut sink);
            oracle.gather(&mut b, &mut sink);
            a.sort_unstable_by_key(|&(k, _)| k);
            assert_eq!(a, b, "round {round}");
        }
        // Gather resets without an intervening begin.
        spa.accumulate(3, 1.5, &mut sink);
        let mut a = Vec::new();
        spa.gather(&mut a, &mut sink);
        assert_eq!(a, vec![(3, 1.5)]);
    }

    #[test]
    fn spa_path_matches_hash_path_decisions() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 40,
                k_in: 10.0,
                k_out: 1.5,
            },
            21,
        );
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let partition = Partition::singletons(g.num_nodes());
        let state = MapState::new(&flow, &partition);
        let active: Vec<NodeId> = (0..g.num_nodes() as u32).collect();
        let labels = partition.labels().to_vec();
        let pool = ScratchPool::new();
        let hash = parallel_decide(&flow, &labels, &state, &active);
        let spa = parallel_decide_spa(&flow, &labels, &state, &active, &pool);
        assert_eq!(hash, spa, "decision streams must be bit-identical");
        // A second sweep through the same pool reuses the scratches.
        let again = parallel_decide_spa(&flow, &labels, &state, &active, &pool);
        assert_eq!(hash, again);
    }

    #[test]
    fn next_active_into_reuses_buffers() {
        let flow = two_triangles_flow();
        let mut mark = Vec::new();
        let mut out = Vec::new();
        next_active_into(&flow, &[2], &mut mark, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(mark.iter().all(|&m| !m), "bitmap must be reset");
        next_active_into(&flow, &[4], &mut mark, &mut out);
        assert_eq!(out, vec![3, 4, 5]);
    }

    #[test]
    fn fast_accumulator_contract() {
        use asa_simarch::accum::{FlowAccumulator, OracleAccumulator};
        let mut fast = FastAccumulator::default();
        let mut oracle = OracleAccumulator::default();
        let mut sink = NullSink;
        fast.begin(&mut sink);
        oracle.begin(&mut sink);
        for (k, v) in [(4u32, 1.0), (2, 0.5), (4, 2.0)] {
            fast.accumulate(k, v, &mut sink);
            oracle.accumulate(k, v, &mut sink);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        fast.gather(&mut a, &mut sink);
        oracle.gather(&mut b, &mut sink);
        a.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(a, b);
    }
}
