//! Local-move optimization: sweeps of `FindBestCommunity` over the vertex
//! set, HyPC-Map style.
//!
//! Each sweep (= one "iteration" in the paper's Tables III/IV) evaluates
//! every *active* vertex against a frozen snapshot of the module
//! assignment — that is the parallel phase — then applies the collected
//! moves sequentially, re-validating each delta against the live state so
//! the codelength decreases monotonically even when parallel decisions
//! were made on stale data. After a sweep, only vertices adjacent to an
//! applied move stay active, which is why per-iteration runtime shrinks
//! across iterations exactly as the paper's Table III shows.

use asa_graph::{NodeId, Partition};
use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{EventSink, NullSink};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

use crate::find_best::{find_best_community, FindBestScratch, MoveDecision};
use crate::flow::FlowNetwork;
use crate::mapeq::{module_flows_of, MapState};

/// Host-speed accumulator for uninstrumented runs: an `FxHashMap` with no
/// event emission. This is what the *algorithm* uses when we only care
/// about the answer (and about wall-clock kernel timings, Fig. 2a).
#[derive(Debug, Default)]
pub struct FastAccumulator {
    map: FxHashMap<u32, f64>,
}

impl FlowAccumulator for FastAccumulator {
    fn begin<S: EventSink>(&mut self, _sink: &mut S) {
        self.map.clear();
    }

    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, _sink: &mut S) {
        *self.map.entry(key).or_insert(0.0) += value;
    }

    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, _sink: &mut S) {
        out.clear();
        out.extend(self.map.drain());
    }

    fn name(&self) -> &'static str {
        "fast-host"
    }
}

/// Decides moves for a slice of vertices against frozen labels, using the
/// provided device and sink. Only improving decisions are returned.
pub fn decide_range<A: FlowAccumulator, S: EventSink>(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    vertices: &[NodeId],
    acc: &mut A,
    sink: &mut S,
    out: &mut Vec<MoveDecision>,
) {
    let mut scratch = FindBestScratch::default();
    for &u in vertices {
        let d = find_best_community(flow, labels, state, u, acc, sink, &mut scratch);
        if d.best_module != labels[u as usize] {
            out.push(d);
        }
    }
}

/// Parallel decision phase over the active set, with per-thread
/// [`FastAccumulator`]s and no instrumentation. Deterministic: the result
/// is ordered by vertex id regardless of thread scheduling.
pub fn parallel_decide(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    active: &[NodeId],
) -> Vec<MoveDecision> {
    let chunk = (active.len() / (rayon::current_num_threads() * 8)).max(512);
    let mut decisions: Vec<MoveDecision> = active
        .par_chunks(chunk)
        .map(|vertices| {
            let mut acc = FastAccumulator::default();
            let mut sink = NullSink;
            let mut out = Vec::new();
            decide_range(flow, labels, state, vertices, &mut acc, &mut sink, &mut out);
            out
        })
        .flatten()
        .collect();
    decisions.sort_unstable_by_key(|d| d.vertex);
    decisions
}

/// Result of applying one sweep's decisions.
#[derive(Debug, Clone)]
pub struct AppliedMoves {
    /// Number of moves actually applied after re-validation.
    pub applied: usize,
    /// The vertices that moved.
    pub moved: Vec<NodeId>,
}

/// Applies decisions in vertex order, re-validating each against the live
/// state (decisions were made against a stale snapshot). A move is applied
/// only if it still improves by more than `min_improvement` bits.
pub fn apply_decisions(
    flow: &FlowNetwork,
    partition: &mut Partition,
    state: &mut MapState,
    decisions: &[MoveDecision],
    min_improvement: f64,
) -> AppliedMoves {
    let mut moved = Vec::new();
    for d in decisions {
        let old = partition.community_of(d.vertex);
        let new = d.best_module;
        if old == new {
            continue;
        }
        let flows_old = module_flows_of(flow, partition, d.vertex, old);
        let flows_new = module_flows_of(flow, partition, d.vertex, new);
        let node = flow.node_summary(d.vertex);
        let delta = state.delta_move(old, new, &node, flows_old, flows_new);
        if delta < -min_improvement {
            state.apply_move(old, new, &node, flows_old, flows_new);
            partition.assign(d.vertex, new);
            moved.push(d.vertex);
        }
    }
    AppliedMoves {
        applied: moved.len(),
        moved,
    }
}

/// The active set for the next sweep: every moved vertex plus its in- and
/// out-neighbours (their best module may have changed), deduplicated and
/// sorted.
pub fn next_active(flow: &FlowNetwork, moved: &[NodeId]) -> Vec<NodeId> {
    let mut mark = vec![false; flow.num_nodes()];
    for &u in moved {
        mark[u as usize] = true;
        for (v, _) in flow.out_arcs(u) {
            mark[v as usize] = true;
        }
        for (v, _) in flow.in_arcs(u) {
            mark[v as usize] = true;
        }
    }
    mark.iter()
        .enumerate()
        .filter_map(|(u, &m)| m.then_some(u as NodeId))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use crate::mapeq::codelength;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::GraphBuilder;

    fn two_triangles_flow() -> FlowNetwork {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        FlowNetwork::from_graph(&b.build(), &InfomapConfig::default())
    }

    fn sweep_once(
        flow: &FlowNetwork,
        partition: &mut Partition,
        state: &mut MapState,
        active: &[NodeId],
    ) -> AppliedMoves {
        let labels = partition.labels().to_vec();
        let decisions = parallel_decide(flow, &labels, state, active);
        apply_decisions(flow, partition, state, &decisions, 1e-12)
    }

    #[test]
    fn sweeps_find_the_triangles() {
        let flow = two_triangles_flow();
        let mut partition = Partition::singletons(6);
        let mut state = MapState::new(&flow, &partition);
        let mut active: Vec<NodeId> = (0..6).collect();
        for _ in 0..10 {
            let l_before = state.codelength();
            let applied = sweep_once(&flow, &mut partition, &mut state, &active);
            assert!(state.codelength() <= l_before + 1e-12);
            if applied.applied == 0 {
                break;
            }
            active = next_active(&flow, &applied.moved);
        }
        partition.compact();
        assert_eq!(partition.num_communities(), 2);
        assert_eq!(partition.community_of(0), partition.community_of(1));
        assert_eq!(partition.community_of(0), partition.community_of(2));
        assert_eq!(partition.community_of(3), partition.community_of(4));
        assert_ne!(partition.community_of(0), partition.community_of(3));
    }

    #[test]
    fn codelength_monotone_on_planted_graph() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 40,
                k_in: 10.0,
                k_out: 1.5,
            },
            7,
        );
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let mut partition = Partition::singletons(g.num_nodes());
        let mut state = MapState::new(&flow, &partition);
        let mut active: Vec<NodeId> = (0..g.num_nodes() as u32).collect();
        let mut last = state.codelength();
        for _ in 0..15 {
            let applied = sweep_once(&flow, &mut partition, &mut state, &active);
            let now = state.codelength();
            assert!(now <= last + 1e-9, "codelength increased: {last} -> {now}");
            last = now;
            if applied.applied == 0 {
                break;
            }
            active = next_active(&flow, &applied.moved);
        }
        // Incremental state must agree with a fresh recomputation.
        let fresh = codelength(&flow, &partition);
        assert!((last - fresh).abs() < 1e-6, "drift: {last} vs {fresh}");
    }

    #[test]
    fn active_set_shrinks() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 4,
                community_size: 50,
                k_in: 12.0,
                k_out: 1.0,
            },
            5,
        );
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let mut partition = Partition::singletons(g.num_nodes());
        let mut state = MapState::new(&flow, &partition);
        let mut active: Vec<NodeId> = (0..g.num_nodes() as u32).collect();
        let mut sizes = vec![active.len()];
        for _ in 0..6 {
            let applied = sweep_once(&flow, &mut partition, &mut state, &active);
            if applied.applied == 0 {
                break;
            }
            active = next_active(&flow, &applied.moved);
            sizes.push(active.len());
        }
        // The workload must shrink substantially after the first sweeps —
        // this is what produces the decreasing per-iteration runtimes of
        // Table III.
        assert!(
            sizes.last().unwrap() < &sizes[0],
            "active set never shrank: {sizes:?}"
        );
    }

    #[test]
    fn fast_accumulator_contract() {
        use asa_simarch::accum::{FlowAccumulator, OracleAccumulator};
        let mut fast = FastAccumulator::default();
        let mut oracle = OracleAccumulator::default();
        let mut sink = NullSink;
        fast.begin(&mut sink);
        oracle.begin(&mut sink);
        for (k, v) in [(4u32, 1.0), (2, 0.5), (4, 2.0)] {
            fast.accumulate(k, v, &mut sink);
            oracle.accumulate(k, v, &mut sink);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        fast.gather(&mut a, &mut sink);
        oracle.gather(&mut b, &mut sink);
        a.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(a, b);
    }
}
