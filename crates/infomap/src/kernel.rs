//! The vectorized dual-SPA sweep kernel.
//!
//! This is the production `FindBestCommunity` fast path: a fused
//! sparse-accumulator for both flow directions, SoA candidate lanes, a
//! per-module scan-term cache, software prefetch, and an optional
//! `core::arch` AVX2 gather path behind the `simd` cargo feature
//! (runtime-dispatched, falling back to the portable unrolled loops).
//!
//! # Sweep kernel anatomy
//!
//! Per vertex the kernel runs three phases over Structure-of-Arrays state:
//!
//! 1. **Accumulate** — walk the vertex's CSR rows, gather each neighbour's
//!    module label (`labels[targets[i]]`, the indexed load AVX2
//!    `vpgatherdd` accelerates), and scatter-add the arc flow into the
//!    dense per-direction value lanes. One stamp byte per module marks
//!    liveness; first touch appends the module to the touched list.
//! 2. **Gather** — sort the touched-module list (ascending module id, the
//!    order the tie-break contract requires), pull the dense values into
//!    compact `out_lane`/`in_lane` candidate lanes (`vgatherdpd` on the
//!    SIMD path), and clear exactly the touched stamps — O(touched), never
//!    O(communities).
//! 3. **Scan** — evaluate the map-equation delta of each candidate with
//!    [`MoveEval`] + [`ModTermCache`]: three `plogp` calls per candidate
//!    instead of ten, bit-identical to [`MapState::delta_move`].
//!
//! Every phase preserves the exact FP operation order of the scalar
//! reference ([`crate::local_move::find_best_community_spa`]), so the
//! decision stream — and therefore partitions and codelengths — are
//! bit-identical across the scalar, portable-vector, and AVX2 paths.

use asa_graph::NodeId;

use crate::config::VertexOrder;
use crate::find_best::MoveDecision;
use crate::flow::FlowNetwork;
use crate::mapeq::{MapState, ModTermCache, ModuleFlows, MoveEval};

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

/// Env var forcing the portable scalar path even when SIMD is compiled in
/// and supported by the CPU. Read once per process.
pub const FORCE_SCALAR_ENV: &str = "ASA_FORCE_SCALAR";

static FORCE_SCALAR: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static FORCE_SCALAR_INIT: std::sync::Once = std::sync::Once::new();

fn force_scalar() -> bool {
    FORCE_SCALAR_INIT.call_once(|| {
        let on = std::env::var(FORCE_SCALAR_ENV)
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false);
        FORCE_SCALAR.store(on, std::sync::atomic::Ordering::Relaxed);
    });
    FORCE_SCALAR.load(std::sync::atomic::Ordering::Relaxed)
}

/// Programmatic override of the dispatch, strongest-wins over the env var.
/// Lets one process benchmark the simd-on and simd-off legs back to back
/// (`hostperf --kernel-breakdown`).
pub fn set_force_scalar(on: bool) {
    force_scalar(); // ensure env init happened so it cannot overwrite us
    FORCE_SCALAR.store(on, std::sync::atomic::Ordering::Relaxed);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_available() -> bool {
    static DETECT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DETECT.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Whether the AVX2 gather path will run for the next kernel invocation.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        avx2_available() && !force_scalar()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = force_scalar();
        false
    }
}

/// The dispatch target's name, for obs records and bench JSON:
/// `"spa-simd-avx2"` or `"spa-scalar"`.
pub fn kernel_path_name() -> &'static str {
    if simd_active() {
        "spa-simd-avx2"
    } else {
        "spa-scalar"
    }
}

// ---------------------------------------------------------------------------
// Sweep visit order
// ---------------------------------------------------------------------------

/// Id-block width of [`VertexOrder::Blocked`]: 4096 vertices is 16 KiB of
/// labels plus (at the typical ~10 arcs/vertex) a few hundred KiB of CSR
/// rows — a block's working set stays within L2 while consecutive sweep
/// vertices share neighbour and label lines.
pub const SWEEP_BLOCK: u32 = 4096;

/// Total degree (out + in rows) of `u`, the sort key of the degree orders.
#[inline]
fn total_degree(flow: &FlowNetwork, u: NodeId) -> usize {
    flow.out_arc_slices(u).0.len() + flow.in_arc_slices(u).0.len()
}

/// Builds the sweep visit order for `active` into `buf` and returns the
/// slice to iterate (the input itself for [`VertexOrder::Input`]).
///
/// Reordering never changes results: decisions are taken against a frozen
/// snapshot and re-sorted by vertex id before application, so only cache
/// behaviour differs.
pub fn sweep_order<'a>(
    flow: &FlowNetwork,
    active: &'a [NodeId],
    order: VertexOrder,
    buf: &'a mut Vec<NodeId>,
) -> &'a [NodeId] {
    match order {
        VertexOrder::Input => active,
        VertexOrder::DegreeDesc => {
            buf.clear();
            buf.extend_from_slice(active);
            // Ties broken ascending-id so the order is deterministic.
            buf.sort_unstable_by_key(|&u| (std::cmp::Reverse(total_degree(flow, u)), u));
            buf
        }
        VertexOrder::Blocked => {
            buf.clear();
            buf.extend_from_slice(active);
            buf.sort_unstable_by_key(|&u| {
                (u / SWEEP_BLOCK, std::cmp::Reverse(total_degree(flow, u)), u)
            });
            buf
        }
    }
}

/// Display name of a [`VertexOrder`], for obs records and bench JSON.
pub fn order_name(order: VertexOrder) -> &'static str {
    match order {
        VertexOrder::Input => "input",
        VertexOrder::DegreeDesc => "degree-desc",
        VertexOrder::Blocked => "blocked",
    }
}

// ---------------------------------------------------------------------------
// Software prefetch
// ---------------------------------------------------------------------------

/// Hints the cache hierarchy to pull the line holding `p` (T0 = all cache
/// levels). Compiles to `prefetcht0` on x86_64 and to nothing elsewhere —
/// prefetching is advisory, so the no-op fallback is semantically free.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

/// How many sweep iterations ahead the CSR row of an upcoming vertex is
/// prefetched. Two stages: at distance 2 the row itself (targets + flows)
/// is pulled, so that at distance 1 the row is resident and its first
/// targets can be dereferenced to prefetch the *label* lines — the truly
/// unpredictable accesses under power-law degrees. Distance 2 covers the
/// ~100–300 cycle DRAM latency at the kernel's ~1k-cycle per-vertex cost
/// without evicting lines before use.
pub const PREFETCH_DISTANCE: usize = 2;

/// Max neighbour labels prefetched per upcoming vertex; bounds the hint
/// overhead on high-degree hubs (beyond ~16 lines the row iteration
/// itself keeps the prefetcher busy).
const PREFETCH_LABELS: usize = 16;

/// Stage-2 hint: pull the CSR row (targets + flows) of vertex `w`.
#[inline]
fn prefetch_row(flow: &FlowNetwork, w: NodeId) {
    let (targets, flows) = flow.out_arc_slices(w);
    if let (Some(t), Some(f)) = (targets.first(), flows.first()) {
        prefetch_read(t);
        prefetch_read(f);
        // Rows spanning multiple lines: hint the tail too.
        if targets.len() > 8 {
            prefetch_read(&targets[targets.len() - 1]);
            prefetch_read(&flows[flows.len() - 1]);
        }
    }
}

/// Stage-1 hint: the row of `w` is (likely) resident now — dereference its
/// first targets and pull their label entries, plus `w`'s own label.
#[inline]
fn prefetch_labels(flow: &FlowNetwork, labels: &[u32], w: NodeId) {
    prefetch_read(&labels[w as usize]);
    let (targets, _) = flow.out_arc_slices(w);
    for &t in targets.iter().take(PREFETCH_LABELS) {
        prefetch_read(&labels[t as usize]);
    }
}

/// Issues both prefetch stages for position `i` of the sweep order.
#[inline]
pub fn prefetch_ahead(flow: &FlowNetwork, labels: &[u32], vertices: &[NodeId], i: usize) {
    if let Some(&w) = vertices.get(i + PREFETCH_DISTANCE) {
        prefetch_row(flow, w);
    }
    if let Some(&w) = vertices.get(i + 1) {
        prefetch_labels(flow, labels, w);
    }
}

// ---------------------------------------------------------------------------
// Label gather (the `labels[targets[i]]` indexed load)
// ---------------------------------------------------------------------------

/// Portable unrolled gather: 8 independent indexed loads per step, no
/// cross-iteration dependencies, so the compiler can schedule them wide.
fn gather_labels_portable(labels: &[u32], targets: &[NodeId], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(targets.len());
    let mut chunks = targets.chunks_exact(8);
    for c in &mut chunks {
        out.extend_from_slice(&[
            labels[c[0] as usize],
            labels[c[1] as usize],
            labels[c[2] as usize],
            labels[c[3] as usize],
            labels[c[4] as usize],
            labels[c[5] as usize],
            labels[c[6] as usize],
            labels[c[7] as usize],
        ]);
    }
    for &t in chunks.remainder() {
        out.push(labels[t as usize]);
    }
}

/// AVX2 gather: 8 labels per `vpgatherdd`.
///
/// # Safety
/// Caller must ensure AVX2 is available and every target id indexes into
/// `labels` (the CSR construction guarantees targets < num_nodes).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn gather_labels_avx2(labels: &[u32], targets: &[NodeId], out: &mut Vec<u32>) {
    use core::arch::x86_64::*;
    let n = targets.len();
    out.clear();
    out.reserve(n);
    // Every slot below `n` is written before set_len publishes them.
    let dst = out.as_mut_ptr();
    let base = labels.as_ptr() as *const i32;
    let mut i = 0;
    while i + 8 <= n {
        let idx = _mm256_loadu_si256(targets.as_ptr().add(i) as *const __m256i);
        let g = _mm256_i32gather_epi32::<4>(base, idx);
        _mm256_storeu_si256(dst.add(i) as *mut __m256i, g);
        i += 8;
    }
    while i < n {
        *dst.add(i) = *labels.get_unchecked(*targets.get_unchecked(i) as usize);
        i += 1;
    }
    out.set_len(n);
}

/// Dispatched label gather.
#[inline]
fn gather_labels(labels: &[u32], targets: &[NodeId], out: &mut Vec<u32>, simd: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: `simd` implies avx2_available(); targets are valid node
        // ids < labels.len() by CSR construction.
        unsafe { gather_labels_avx2(labels, targets, out) };
        return;
    }
    let _ = simd;
    gather_labels_portable(labels, targets, out);
}

// ---------------------------------------------------------------------------
// Fused dual-direction SPA
// ---------------------------------------------------------------------------

/// One dense accumulator slot: liveness stamp plus both direction sums,
/// padded to 32 bytes so a module's whole scatter state lives on one cache
/// line (the SoA layout this replaced paid up to three misses per
/// first-touched module — the scatter phase is miss-bound at vertex level
/// where labels are near-random).
#[derive(Debug, Clone, Copy, Default)]
#[repr(C, align(32))]
struct SpaSlot {
    /// Liveness: bit 0 = out touched, bit 1 = in touched.
    stamp: u64,
    /// Out-flow sum (valid where stamp bit 0 set, else zeroed-on-touch).
    out: f64,
    /// In-flow sum (valid where stamp bit 1 set, else zeroed-on-touch).
    in_: f64,
    _pad: f64,
}

/// How many scatter iterations ahead the accumulate loop prefetches the
/// slot line of an upcoming label. Slots are scattered near-randomly at
/// vertex level, so overlapping these misses is the main accumulate win.
const SCATTER_PREFETCH: usize = 8;

/// Fused sparse accumulator for both flow directions of one vertex, with
/// compact candidate lanes.
///
/// Unlike the two independent epoch-stamped [`SpaAccumulator`]s of the
/// scalar reference, both directions share one stamp and one touched
/// list: a module is appended on its *first* touch from either direction
/// and its other-direction sum is zeroed, so accumulation into either
/// direction is a plain indexed add afterwards. Stamp and sums share one
/// 32-byte [`SpaSlot`] and are cleared through the touched list — the
/// reset is O(touched this vertex), never O(communities), with lifetime
/// counters proving it.
#[derive(Debug, Default)]
pub struct DualSpa {
    /// Dense per-module accumulator slots.
    slots: Vec<SpaSlot>,
    /// Modules touched since the last gather, append order.
    touched: Vec<u32>,
    /// Compact candidate lanes, rebuilt by [`DualSpa::gather`]: sorted
    /// module ids plus their out/in flow sums.
    keys: Vec<u32>,
    out_lane: Vec<f64>,
    in_lane: Vec<f64>,
    /// Scratch for the gathered neighbour labels of the current row.
    label_buf: Vec<u32>,
    /// Lifetime stamp-clear invocations (one per gather).
    reset_calls: u64,
    /// Lifetime stamp entries cleared — O(touched) discipline means this
    /// equals Σ touched-set sizes, not sweeps × communities.
    reset_entries: u64,
}

impl DualSpa {
    /// Grows the dense slot array to admit module ids `0..capacity`. Never
    /// shrinks, so coarse levels reuse the vertex-level allocation.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        if self.slots.len() < capacity {
            self.slots.resize(capacity, SpaSlot::default());
        }
    }

    /// Largest admissible module id + 1.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Lifetime `(reset_calls, reset_entries)` of the touched-list clear.
    pub fn reset_stats(&self) -> (u64, u64) {
        (self.reset_calls, self.reset_entries)
    }

    /// Scatter-adds `f` into the out sum of module `m`. First touch from
    /// either direction stamps the slot, zeroes the sibling direction, and
    /// records `m` in the touched list.
    #[inline]
    fn add_out(&mut self, m: u32, f: f64) {
        debug_assert!(
            (m as usize) < self.slots.len(),
            "module {m} beyond SPA capacity"
        );
        let slot = &mut self.slots[m as usize];
        let s = slot.stamp;
        if s & 1 == 0 {
            if s == 0 {
                slot.in_ = 0.0;
                self.touched.push(m);
            }
            slot.stamp = s | 1;
            slot.out = f;
        } else {
            slot.out += f;
        }
    }

    /// Scatter-adds `f` into the in sum of module `m`.
    #[inline]
    fn add_in(&mut self, m: u32, f: f64) {
        debug_assert!(
            (m as usize) < self.slots.len(),
            "module {m} beyond SPA capacity"
        );
        let slot = &mut self.slots[m as usize];
        let s = slot.stamp;
        if s & 2 == 0 {
            if s == 0 {
                slot.out = 0.0;
                self.touched.push(m);
            }
            slot.stamp = s | 2;
            slot.in_ = f;
        } else {
            slot.in_ += f;
        }
    }

    /// Phase 1: accumulate both directions of vertex `u`'s flow per
    /// neighbouring module. Per-module additions happen in arc order — the
    /// identical FP sequence as the hash and scalar-SPA paths.
    #[inline]
    pub fn accumulate(&mut self, flow: &FlowNetwork, labels: &[u32], u: NodeId, simd: bool) {
        debug_assert!(self.touched.is_empty(), "gather must precede accumulate");
        let (targets, flows) = flow.out_arc_slices(u);
        // Split the indexed label loads from the scatter-adds: the gather
        // half is branch-free and 8-wide (vpgatherdd on the SIMD path).
        let mut lbl = std::mem::take(&mut self.label_buf);
        gather_labels(labels, targets, &mut lbl, simd);
        self.scatter_row(&lbl, flows, true);
        // On symmetric networks the in-arc stream is the out-arc stream,
        // so the per-module in sums are the out sums bit-for-bit — skip
        // the second accumulation; `gather` mirrors the lane instead.
        if !flow.is_symmetric() {
            let (targets, flows) = flow.in_arc_slices(u);
            gather_labels(labels, targets, &mut lbl, simd);
            self.scatter_row(&lbl, flows, false);
        }
        self.label_buf = lbl;
    }

    /// Scatter one direction's `(label, flow)` row into the slots, with
    /// the slot line of the label [`SCATTER_PREFETCH`] iterations ahead
    /// pulled early so the near-random slot misses overlap.
    #[inline]
    fn scatter_row(&mut self, lbl: &[u32], flows: &[f64], out_dir: bool) {
        for (i, &f) in flows.iter().enumerate() {
            if let Some(&ahead) = lbl.get(i + SCATTER_PREFETCH) {
                prefetch_read(&self.slots[ahead as usize]);
            }
            if out_dir {
                self.add_out(lbl[i], f);
            } else {
                self.add_in(lbl[i], f);
            }
        }
    }

    /// Phase 2: sort the touched union ascending (the candidate visit
    /// order the tie-break contract requires), pull the slot sums into
    /// the compact lanes, and clear exactly the touched stamps.
    #[inline]
    pub fn gather(&mut self, symmetric: bool, simd: bool) {
        self.touched.sort_unstable();
        let n = self.touched.len();
        self.keys.clear();
        self.keys.extend_from_slice(&self.touched);
        gather_lane(&self.slots, &self.keys, &mut self.out_lane, LANE_OUT, simd);
        if symmetric {
            // in sums == out sums bit-for-bit on symmetric networks.
            self.in_lane.clear();
            self.in_lane.extend_from_slice(&self.out_lane);
        } else {
            gather_lane(&self.slots, &self.keys, &mut self.in_lane, LANE_IN, simd);
        }
        // O(touched) reset: only the stamps this vertex dirtied.
        for &k in &self.touched {
            self.slots[k as usize].stamp = 0;
        }
        self.reset_calls += 1;
        self.reset_entries += n as u64;
        self.touched.clear();
    }

    /// The sorted candidate lanes of the last gather.
    #[inline]
    pub fn lanes(&self) -> Lanes<'_> {
        Lanes {
            keys: &self.keys,
            out: &self.out_lane,
            in_: &self.in_lane,
        }
    }
}

/// Borrowed view of one vertex's gathered candidate lanes: touched module
/// ids (ascending) with the out/in exchange flow accumulated per module.
#[derive(Clone, Copy, Debug)]
pub struct Lanes<'a> {
    /// Touched module ids, sorted ascending.
    pub keys: &'a [u32],
    /// Out-direction exchange flow, parallel to `keys`.
    pub out: &'a [f64],
    /// In-direction exchange flow, parallel to `keys`.
    pub in_: &'a [f64],
}

/// f64-offset of [`SpaSlot::out`] within a slot (slot stride = 4 f64s).
const LANE_OUT: usize = 1;
/// f64-offset of [`SpaSlot::in_`] within a slot.
const LANE_IN: usize = 2;

/// Portable indexed lane gather from the AoS slots, 4-wide unrolled.
fn gather_lane_portable(slots: &[SpaSlot], idx: &[u32], out: &mut Vec<f64>, lane: usize) {
    #[inline(always)]
    fn ld(slots: &[SpaSlot], k: u32, lane: usize) -> f64 {
        let s = &slots[k as usize];
        if lane == LANE_OUT {
            s.out
        } else {
            s.in_
        }
    }
    out.clear();
    out.reserve(idx.len());
    let mut chunks = idx.chunks_exact(4);
    for c in &mut chunks {
        out.extend_from_slice(&[
            ld(slots, c[0], lane),
            ld(slots, c[1], lane),
            ld(slots, c[2], lane),
            ld(slots, c[3], lane),
        ]);
    }
    for &k in chunks.remainder() {
        out.push(ld(slots, k, lane));
    }
}

/// AVX2 indexed lane gather from the AoS slots: 4 doubles per
/// `vgatherdpd`. A [`SpaSlot`] is exactly 4 f64s, so slot `k`'s lane value
/// sits at f64-index `4k + lane` from the slot base — the index vector is
/// the module ids shifted left by 2 plus the lane offset.
///
/// # Safety
/// Caller must ensure AVX2 is available, every index is < `slots.len()`,
/// and `4 * slots.len()` fits in `i32`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn gather_lane_avx2(slots: &[SpaSlot], idx: &[u32], out: &mut Vec<f64>, lane: usize) {
    use core::arch::x86_64::*;
    let n = idx.len();
    out.clear();
    out.reserve(n);
    let dst = out.as_mut_ptr();
    let base = slots.as_ptr() as *const f64;
    let off = _mm_set1_epi32(lane as i32);
    let mut i = 0;
    while i + 4 <= n {
        let ix = _mm_loadu_si128(idx.as_ptr().add(i) as *const __m128i);
        let ix = _mm_add_epi32(_mm_slli_epi32::<2>(ix), off);
        let g = _mm256_i32gather_pd::<8>(base, ix);
        _mm256_storeu_pd(dst.add(i), g);
        i += 4;
    }
    while i < n {
        let s = slots.get_unchecked(*idx.get_unchecked(i) as usize);
        *dst.add(i) = if lane == LANE_OUT { s.out } else { s.in_ };
        i += 1;
    }
    out.set_len(n);
}

/// Dispatched indexed lane gather.
#[inline]
fn gather_lane(slots: &[SpaSlot], idx: &[u32], out: &mut Vec<f64>, lane: usize, simd: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: `simd` implies avx2_available(); indices are module ids
        // < slots.len() (ensure_capacity covers the level's module count),
        // and module counts are u32 node counts well inside `i32 / 4`.
        unsafe { gather_lane_avx2(slots, idx, out, lane) };
        return;
    }
    let _ = simd;
    gather_lane_portable(slots, idx, out, lane);
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

/// Phase 3: evaluate every candidate module in the lanes and return the
/// best move for `u`. Visit order is ascending module id and the epsilon
/// tie-break mirrors the generic kernel exactly, so the decision is
/// bit-identical to the scalar reference.
#[inline]
pub fn scan(
    flow: &FlowNetwork,
    state: &MapState,
    cache: &mut ModTermCache,
    u: NodeId,
    my_module: u32,
    lanes: Lanes<'_>,
) -> MoveDecision {
    let Lanes { keys, out, in_ } = lanes;
    // The vertex's exchange with its own module: lanes hold it iff the
    // module was touched; untouched means zero exchange.
    let flows_old = match keys.binary_search(&my_module) {
        Ok(i) => ModuleFlows {
            out_flow: out[i],
            in_flow: in_[i],
        },
        Err(_) => ModuleFlows::default(),
    };
    let node = flow.node_summary(u);
    let eval = MoveEval::new_cached(state, cache, my_module, &node, flows_old);

    let mut best = MoveDecision {
        vertex: u,
        best_module: my_module,
        delta: 0.0,
    };
    for (i, &m) in keys.iter().enumerate() {
        // Pull the per-module lines of an upcoming candidate early: each
        // evaluation reads three MapState arrays plus the term-cache entry
        // at a near-random module id, which misses at vertex level.
        if let Some(&ahead) = keys.get(i + 2) {
            state.prefetch_module(ahead);
            cache.prefetch(ahead);
        }
        if m == my_module {
            continue;
        }
        let mf = ModuleFlows {
            out_flow: out[i],
            in_flow: in_[i],
        };
        let delta = eval.delta(state, cache, m, mf);
        // Tie-break deterministically on module id so parallel and
        // sequential schedules agree (mirrors the generic kernel exactly).
        let improves =
            delta < best.delta - 1e-15 || (delta < best.delta + 1e-15 && m < best.best_module);
        if improves && delta < -1e-15 {
            best.best_module = m;
            best.delta = delta;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Whole-vertex kernel + phase-timed variant
// ---------------------------------------------------------------------------

/// `FindBestCommunity` for one vertex on the vectorized path: the three
/// phases composed back to back.
#[inline]
pub fn find_best_community_vec(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    u: NodeId,
    spa: &mut DualSpa,
    cache: &mut ModTermCache,
    simd: bool,
) -> MoveDecision {
    spa.accumulate(flow, labels, u, simd);
    spa.gather(flow.is_symmetric(), simd);
    scan(flow, state, cache, u, labels[u as usize], spa.lanes())
}

/// Per-phase wall-clock attribution of the sweep kernel, shared across
/// worker threads. Chunk-local nanosecond counters are flushed here once
/// per chunk, so the atomics stay off the per-vertex path.
#[derive(Debug, Default)]
pub struct KernelPhaseTimes {
    accumulate_ns: std::sync::atomic::AtomicU64,
    gather_ns: std::sync::atomic::AtomicU64,
    scan_ns: std::sync::atomic::AtomicU64,
}

/// One chunk's (or one process's) phase totals, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelBreakdown {
    /// Seconds in phase 1 (label gather + scatter-add).
    pub accumulate_seconds: f64,
    /// Seconds in phase 2 (touched sort + lane gather + reset).
    pub gather_seconds: f64,
    /// Seconds in phase 3 (candidate evaluation).
    pub scan_seconds: f64,
}

impl KernelBreakdown {
    /// Total kernel seconds across the three phases.
    pub fn total_seconds(&self) -> f64 {
        self.accumulate_seconds + self.gather_seconds + self.scan_seconds
    }
}

impl KernelPhaseTimes {
    /// A zeroed counter set, const so it can live in a `static`.
    pub const fn new() -> Self {
        Self {
            accumulate_ns: std::sync::atomic::AtomicU64::new(0),
            gather_ns: std::sync::atomic::AtomicU64::new(0),
            scan_ns: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Flushes one chunk's nanosecond totals.
    pub fn add_ns(&self, accumulate: u64, gather: u64, scan: u64) {
        use std::sync::atomic::Ordering;
        self.accumulate_ns.fetch_add(accumulate, Ordering::Relaxed);
        self.gather_ns.fetch_add(gather, Ordering::Relaxed);
        self.scan_ns.fetch_add(scan, Ordering::Relaxed);
    }

    /// Snapshot of the accumulated totals.
    pub fn snapshot(&self) -> KernelBreakdown {
        use std::sync::atomic::Ordering;
        let s = |ns: u64| ns as f64 * 1e-9;
        KernelBreakdown {
            accumulate_seconds: s(self.accumulate_ns.load(Ordering::Relaxed)),
            gather_seconds: s(self.gather_ns.load(Ordering::Relaxed)),
            scan_seconds: s(self.scan_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Process-wide phase-time accumulator, so `hostperf --kernel-breakdown`
/// can attribute gather/accumulate/scan seconds without threading a handle
/// through the public `detect_communities` API. Off by default; the
/// production sweep path is untouched unless [`set_phase_timing`] enables
/// it.
static GLOBAL_PHASE_TIMES: KernelPhaseTimes = KernelPhaseTimes::new();
static PHASE_TIMING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enables/disables per-phase kernel timing into [`global_phase_times`].
pub fn set_phase_timing(on: bool) {
    PHASE_TIMING.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Whether per-phase kernel timing is currently enabled.
#[inline]
pub fn phase_timing() -> bool {
    PHASE_TIMING.load(std::sync::atomic::Ordering::Relaxed)
}

/// The process-wide phase-time accumulator. Callers snapshot before and
/// after a run and report the delta.
pub fn global_phase_times() -> &'static KernelPhaseTimes {
    &GLOBAL_PHASE_TIMES
}

/// [`find_best_community_vec`] with per-phase timing into chunk-local
/// counters (flush them to a [`KernelPhaseTimes`] at chunk end). Identical
/// decision output — timing wraps the same phase calls.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn find_best_community_vec_timed(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    u: NodeId,
    spa: &mut DualSpa,
    cache: &mut ModTermCache,
    simd: bool,
    ns: &mut (u64, u64, u64),
) -> MoveDecision {
    let t0 = std::time::Instant::now();
    spa.accumulate(flow, labels, u, simd);
    let t1 = std::time::Instant::now();
    spa.gather(flow.is_symmetric(), simd);
    let t2 = std::time::Instant::now();
    let d = scan(flow, state, cache, u, labels[u as usize], spa.lanes());
    let t3 = std::time::Instant::now();
    ns.0 += (t1 - t0).as_nanos() as u64;
    ns.1 += (t2 - t1).as_nanos() as u64;
    ns.2 += (t3 - t2).as_nanos() as u64;
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use crate::local_move::find_best_community_spa;
    use crate::local_move::SpaAccumulator;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::{GraphBuilder, Partition};

    fn directed_flow(n: u32, arcs: u32, seed: u64) -> FlowNetwork {
        let mut b = GraphBuilder::directed(n as usize);
        let mut x = seed;
        for _ in 0..arcs {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % n as u64) as u32;
            let v = ((x >> 13) % n as u64) as u32;
            if u != v {
                b.add_edge(u, v, 1.0 + (x % 7) as f64);
            }
        }
        FlowNetwork::from_graph(&b.build(), &InfomapConfig::default())
    }

    fn check_vec_matches_scalar(flow: &FlowNetwork, labels: &[u32], modules: usize) {
        let state = MapState::new(flow, &Partition::from_labels(labels.to_vec()));
        let mut out_spa = SpaAccumulator::with_capacity(modules);
        let mut in_spa = SpaAccumulator::with_capacity(modules);
        let mut keys = Vec::new();
        let mut dual = DualSpa::default();
        dual.ensure_capacity(modules);
        let mut cache = ModTermCache::default();
        cache.begin(modules);
        for simd in [false, simd_active()] {
            for u in 0..flow.num_nodes() as u32 {
                let a = find_best_community_spa(
                    flow,
                    labels,
                    &state,
                    u,
                    &mut out_spa,
                    &mut in_spa,
                    &mut keys,
                );
                let b =
                    find_best_community_vec(flow, labels, &state, u, &mut dual, &mut cache, simd);
                assert_eq!(a.vertex, b.vertex);
                assert_eq!(a.best_module, b.best_module, "u={u} simd={simd}");
                assert_eq!(
                    a.delta.to_bits(),
                    b.delta.to_bits(),
                    "u={u} simd={simd}: {} vs {}",
                    a.delta,
                    b.delta
                );
            }
        }
    }

    #[test]
    fn vec_kernel_matches_scalar_spa_undirected() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 5,
                community_size: 30,
                k_in: 8.0,
                k_out: 2.0,
            },
            11,
        );
        let n = g.num_nodes();
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let singleton: Vec<u32> = (0..n as u32).collect();
        check_vec_matches_scalar(&flow, &singleton, n);

        // A graph whose undirected flow really carries the symmetric flag
        // (uniform arc flows), exercising the lane-mirror fast path.
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let sym = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        assert!(sym.is_symmetric());
        let labels: Vec<u32> = (0..6).collect();
        check_vec_matches_scalar(&sym, &labels, 6);
    }

    #[test]
    fn vec_kernel_matches_scalar_spa_directed() {
        let flow = directed_flow(60, 400, 23);
        assert!(!flow.is_symmetric());
        let labels: Vec<u32> = (0..60).collect();
        check_vec_matches_scalar(&flow, &labels, 60);
    }

    #[test]
    fn dual_spa_reset_is_o_touched() {
        let flow = directed_flow(200, 600, 5);
        let labels: Vec<u32> = (0..200).collect();
        let state = MapState::new(&flow, &Partition::singletons(200));
        let mut dual = DualSpa::default();
        dual.ensure_capacity(200);
        let mut cache = ModTermCache::default();
        cache.begin(200);
        let mut degree_sum = 0u64;
        for u in 0..200u32 {
            let (to, _) = flow.out_arc_slices(u);
            let (ti, _) = flow.in_arc_slices(u);
            degree_sum += (to.len() + ti.len()) as u64;
            let _ =
                find_best_community_vec(&flow, &labels, &state, u, &mut dual, &mut cache, false);
        }
        let (calls, entries) = dual.reset_stats();
        assert_eq!(calls, 200);
        // Touched ≤ degree per vertex (each arc touches at most one new
        // module) and far below calls × communities.
        assert!(entries <= degree_sum, "{entries} > Σdeg {degree_sum}");
        assert!(
            entries < calls * 200 / 2,
            "reset looks O(communities): {entries} entries over {calls} calls"
        );
    }

    #[test]
    fn gather_helpers_match_naive() {
        let slots: Vec<SpaSlot> = (0..64)
            .map(|i| SpaSlot {
                stamp: 3,
                out: i as f64 * 0.25 + 1.0,
                in_: i as f64 * -0.5 + 7.0,
                _pad: 0.0,
            })
            .collect();
        let labels: Vec<u32> = (0..64).map(|i| (i * 7 % 64) as u32).collect();
        let idx: Vec<u32> = vec![0, 63, 5, 5, 17, 42, 9, 31, 2, 8, 55];
        for simd in [false, simd_active()] {
            let mut out_l = Vec::new();
            gather_labels(&labels, &idx, &mut out_l, simd);
            let naive_l: Vec<u32> = idx.iter().map(|&k| labels[k as usize]).collect();
            assert_eq!(out_l, naive_l, "labels simd={simd}");
            for (lane, pick) in [
                (LANE_OUT, (|s: &SpaSlot| s.out) as fn(&SpaSlot) -> f64),
                (LANE_IN, |s: &SpaSlot| s.in_),
            ] {
                let mut out_f = Vec::new();
                gather_lane(&slots, &idx, &mut out_f, lane, simd);
                let naive_f: Vec<f64> = idx.iter().map(|&k| pick(&slots[k as usize])).collect();
                assert_eq!(out_f, naive_f, "lane {lane} simd={simd}");
            }
        }
    }

    #[test]
    fn force_scalar_override_wins() {
        let env_on = std::env::var(FORCE_SCALAR_ENV)
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false);
        let was = simd_active();
        set_force_scalar(true);
        assert!(!simd_active());
        assert_eq!(kernel_path_name(), "spa-scalar");
        // Restore the env-derived state (keeps this test honest under the
        // ASA_FORCE_SCALAR=1 CI leg) and check the dispatch came back.
        set_force_scalar(env_on);
        assert_eq!(simd_active(), was);
    }

    #[test]
    fn phase_times_accumulate() {
        let times = KernelPhaseTimes::default();
        times.add_ns(1_000_000, 2_000_000, 3_000_000);
        times.add_ns(1_000_000, 0, 500_000);
        let b = times.snapshot();
        assert!((b.accumulate_seconds - 0.002).abs() < 1e-12);
        assert!((b.gather_seconds - 0.002).abs() < 1e-12);
        assert!((b.scan_seconds - 0.0035).abs() < 1e-12);
        assert!((b.total_seconds() - 0.0075).abs() < 1e-12);
    }
}
