//! The hierarchical (multilevel) map equation.
//!
//! Rosvall & Bergstrom's 2011 extension prices a *nested* partition: each
//! module owns a codebook containing one codeword per direct child (a
//! submodule-enter event or a node visit) plus an exit codeword, and the
//! codelength sums every codebook's usage-weighted entropy. For a two-level
//! hierarchy this reduces exactly to the flat map equation (paper Eq. 1),
//! which the tests assert; deeper hierarchies compress further on networks
//! with modules-within-modules.
//!
//! The flat optimizer in this crate already produces a nested sequence of
//! partitions ([`crate::InfomapResult::level_partitions`]); this module
//! scores such a sequence hierarchically — reproducing the direction the
//! original Infomap took after the paper's two-level formulation.

use asa_graph::Partition;

use crate::flow::FlowNetwork;
use crate::mapeq::plogp;

/// A nested module hierarchy over a vertex set.
///
/// `levels[0]` is the finest grouping of vertices; every later level must
/// be a coarsening of the previous one (vertices sharing a module at level
/// `k` share one at `k+1`). The coarsest level's modules are the root's
/// children.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    levels: Vec<Partition>,
}

impl Hierarchy {
    /// Builds a hierarchy from nested vertex→module partitions, finest
    /// first.
    ///
    /// # Panics
    /// Panics if the list is empty, lengths disagree, or a level fails to
    /// nest inside its successor.
    pub fn new(levels: Vec<Partition>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        for w in levels.windows(2) {
            assert_eq!(w[0].len(), w[1].len(), "levels cover different vertex sets");
            let mut map = vec![u32::MAX; w[0].num_communities()];
            for u in 0..w[0].len() as u32 {
                let fine = w[0].community_of(u) as usize;
                let coarse = w[1].community_of(u);
                if map[fine] == u32::MAX {
                    map[fine] = coarse;
                } else {
                    assert_eq!(map[fine], coarse, "level {} does not nest", w.len());
                }
            }
        }
        Self { levels }
    }

    /// A flat (single-level) hierarchy.
    pub fn flat(partition: Partition) -> Self {
        Self::new(vec![partition])
    }

    /// Number of levels between vertices and the root.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The finest-level partition.
    pub fn finest(&self) -> &Partition {
        &self.levels[0]
    }

    /// The coarsest-level partition (the root's children).
    pub fn coarsest(&self) -> &Partition {
        self.levels.last().unwrap()
    }
}

/// Codelength (bits/step) of a hierarchy over `flow`, per the multilevel
/// map equation.
pub fn hierarchical_codelength(flow: &FlowNetwork, hierarchy: &Hierarchy) -> f64 {
    let n = flow.num_nodes();
    assert_eq!(n, hierarchy.finest().len());
    let levels = &hierarchy.levels;
    let depth = levels.len();

    // Exit flow of every module at every level: flow crossing the module
    // boundary (out-direction), computed in one pass per level.
    let mut exits: Vec<Vec<f64>> = Vec::with_capacity(depth);
    for part in levels {
        let mut q = vec![0.0f64; part.num_communities()];
        for u in 0..n as u32 {
            let cu = part.community_of(u);
            for (v, f) in flow.out_arcs(u) {
                if part.community_of(v) != cu {
                    q[cu as usize] += f;
                }
            }
        }
        exits.push(q);
    }

    let mut total = 0.0f64;

    // Root codebook: one enter codeword per coarsest module (enter rate =
    // exit rate in a stationary ergodic walk); the root has no exit.
    {
        let q_top = &exits[depth - 1];
        let t: f64 = q_top.iter().sum();
        total += plogp(t) - q_top.iter().copied().map(plogp).sum::<f64>();
    }

    // Codebooks of modules at level k: children are modules of level k-1
    // (or vertices when k = 0).
    for k in 0..depth {
        let part = &levels[k];
        let q_exit = &exits[k];
        let m = part.num_communities();
        // Child enter-rate sums and child plogp sums per parent module.
        let mut child_rate = vec![0.0f64; m];
        let mut child_plogp = vec![0.0f64; m];
        if k == 0 {
            for u in 0..n as u32 {
                let p = flow.node_flow(u);
                let c = part.community_of(u) as usize;
                child_rate[c] += p;
                child_plogp[c] += plogp(p);
            }
        } else {
            let finer = &levels[k - 1];
            let q_child = &exits[k - 1];
            // Map each finer module to its parent via any member vertex.
            let mut parent = vec![u32::MAX; finer.num_communities()];
            for u in 0..n as u32 {
                parent[finer.community_of(u) as usize] = part.community_of(u);
            }
            for (c, &pm) in parent.iter().enumerate() {
                let q = q_child[c];
                child_rate[pm as usize] += q;
                child_plogp[pm as usize] += plogp(q);
            }
        }
        for i in 0..m {
            let t = child_rate[i] + q_exit[i];
            total += plogp(t) - child_plogp[i] - plogp(q_exit[i]);
        }
    }

    total
}

/// Builds a hierarchy from an optimizer's nested level partitions (e.g.
/// [`crate::InfomapResult::level_partitions`] without refinement, or any
/// hand-built nesting), dropping consecutive duplicate levels.
pub fn hierarchy_from_levels(levels: &[Partition]) -> Hierarchy {
    assert!(!levels.is_empty());
    let mut kept: Vec<Partition> = vec![levels[0].clone()];
    for p in &levels[1..] {
        if p.labels() != kept.last().unwrap().labels() {
            kept.push(p.clone());
        }
    }
    Hierarchy::new(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use crate::mapeq::codelength;
    use asa_graph::GraphBuilder;

    fn two_triangles_flow() -> FlowNetwork {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        FlowNetwork::from_graph(&b.build(), &InfomapConfig::default())
    }

    #[test]
    fn flat_hierarchy_matches_flat_map_equation() {
        let flow = two_triangles_flow();
        for labels in [
            vec![0u32, 0, 0, 1, 1, 1],
            vec![0, 1, 2, 3, 4, 5],
            vec![0, 0, 0, 0, 0, 0],
            vec![0, 1, 0, 1, 0, 1],
        ] {
            let p = Partition::from_labels(labels);
            let flat = codelength(&flow, &p);
            let hier = hierarchical_codelength(&flow, &Hierarchy::flat(p));
            assert!(
                (flat - hier).abs() < 1e-12,
                "flat {flat} vs hierarchical {hier}"
            );
        }
    }

    /// A graph of 4 super-modules, each containing 2 cliques of 4 vertices.
    fn nested_graph() -> (FlowNetwork, Partition, Partition) {
        let clique = 4usize;
        let per_super = 2usize;
        let supers = 4usize;
        let n = clique * per_super * supers;
        let mut b = GraphBuilder::undirected(n);
        for s in 0..supers {
            for c in 0..per_super {
                let base = (s * per_super + c) * clique;
                for i in 0..clique {
                    for j in (i + 1)..clique {
                        b.add_edge((base + i) as u32, (base + j) as u32, 1.0);
                    }
                }
            }
            // Bridges inside a super-module.
            let a = (s * per_super) * clique;
            let d = (s * per_super + 1) * clique;
            b.add_edge(a as u32, d as u32, 1.0);
            b.add_edge((a + 1) as u32, (d + 1) as u32, 1.0);
        }
        // Weak ring between super-modules.
        for s in 0..supers {
            let a = s * per_super * clique;
            let d = ((s + 1) % supers) * per_super * clique;
            b.add_edge(a as u32, d as u32, 0.25);
        }
        let fine = Partition::from_labels((0..n as u32).map(|u| u / clique as u32).collect());
        let coarse = Partition::from_labels(
            (0..n as u32)
                .map(|u| u / (clique * per_super) as u32)
                .collect(),
        );
        (
            FlowNetwork::from_graph(&b.build(), &InfomapConfig::default()),
            fine,
            coarse,
        )
    }

    #[test]
    fn deeper_hierarchy_compresses_nested_structure() {
        let (flow, fine, coarse) = nested_graph();
        let flat_fine = hierarchical_codelength(&flow, &Hierarchy::flat(fine.clone()));
        let flat_coarse = hierarchical_codelength(&flow, &Hierarchy::flat(coarse.clone()));
        let nested = hierarchical_codelength(&flow, &Hierarchy::new(vec![fine, coarse]));
        assert!(
            nested < flat_fine && nested < flat_coarse,
            "nested {nested} should beat flat fine {flat_fine} and flat coarse {flat_coarse}"
        );
    }

    #[test]
    fn nesting_validated() {
        let fine = Partition::from_labels(vec![0, 0, 1, 1]);
        let not_coarser = Partition::from_labels(vec![0, 1, 1, 1]);
        let result = std::panic::catch_unwind(|| Hierarchy::new(vec![fine, not_coarser]));
        assert!(result.is_err(), "non-nested levels must be rejected");
    }

    #[test]
    fn duplicate_levels_dropped() {
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        let h = hierarchy_from_levels(&[p.clone(), p.clone(), Partition::uniform(4)]);
        assert_eq!(h.depth(), 2);
    }

    #[test]
    fn optimizer_levels_score_hierarchically() {
        use crate::driver::detect_communities;
        use asa_graph::generators::{lfr_benchmark, LfrConfig};
        let lfr = lfr_benchmark(
            &LfrConfig {
                n: 500,
                mu: 0.2,
                ..Default::default()
            },
            3,
        );
        let cfg = InfomapConfig {
            outer_loops: 1, // keep level partitions strictly nested
            ..Default::default()
        };
        let result = detect_communities(&lfr.graph, &cfg);
        let flow = FlowNetwork::from_graph(&lfr.graph, &cfg);
        let h = hierarchy_from_levels(&result.level_partitions);
        let l = hierarchical_codelength(&flow, &h);
        assert!(l.is_finite() && l > 0.0);
        // The hierarchical score of the full nesting can only add index
        // codebooks above the flat final partition; on LFR's one-scale
        // structure it should stay in the same ballpark.
        assert!((l - result.codelength).abs() / result.codelength < 0.5);
    }
}
