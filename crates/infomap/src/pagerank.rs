//! PageRank kernel: ergodic vertex visit probabilities.
//!
//! "This kernel computes the ergodic vertex visit probability (PageRank)
//! for all of the vertices taking teleportation into account. The PageRank
//! is computed using the power iteration method." (Section II-C.)

use asa_graph::CsrGraph;
use rayon::prelude::*;

/// Result of the power iteration.
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Visit probability per vertex; sums to 1.
    pub rank: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 change.
    pub residual: f64,
}

/// Weighted PageRank with teleportation `tau`, dangling-mass
/// redistribution, run until the L1 residual drops below `tol` or
/// `max_iters` is hit. Parallelized with rayon (the paper's HyPC-Map uses
/// the OpenMP equivalent).
pub fn pagerank(graph: &CsrGraph, tau: f64, tol: f64, max_iters: usize) -> PageRank {
    assert!((0.0..1.0).contains(&tau), "teleport must be in [0,1)");
    let n = graph.num_nodes();
    if n == 0 {
        return PageRank {
            rank: Vec::new(),
            iterations: 0,
            residual: 0.0,
        };
    }

    // Precompute inverse out-strengths.
    let inv_strength: Vec<f64> = (0..n as u32)
        .into_par_iter()
        .map(|u| {
            let s = graph.out_weight(u);
            if s > 0.0 {
                1.0 / s
            } else {
                0.0
            }
        })
        .collect();

    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let uniform = 1.0 / n as f64;

    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < max_iters && residual > tol {
        // Dangling mass teleports uniformly.
        let dangling_mass: f64 = (0..n as u32)
            .into_par_iter()
            .filter(|&u| graph.out_degree(u) == 0)
            .map(|u| rank[u as usize])
            .sum();

        // Pull formulation: next[v] from v's in-neighbours. Embarrassingly
        // parallel and deterministic (no atomics, fixed reduction order per
        // vertex).
        let base = tau * uniform + (1.0 - tau) * dangling_mass * uniform;
        next.par_iter_mut().enumerate().for_each(|(v, slot)| {
            let mut acc = 0.0;
            for e in graph.in_neighbors(v as u32).iter() {
                acc += rank[e.target as usize] * e.weight * inv_strength[e.target as usize];
            }
            *slot = base + (1.0 - tau) * acc;
        });

        residual = rank
            .par_iter()
            .zip(next.par_iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        iterations += 1;
    }

    PageRank {
        rank,
        iterations,
        residual,
    }
}

/// Analytic stationary distribution for undirected graphs: visit rates are
/// proportional to vertex strength, no iteration needed. Isolated vertices
/// receive the residual teleport-uniform mass.
pub fn undirected_stationary(graph: &CsrGraph) -> Vec<f64> {
    let n = graph.num_nodes();
    let total: f64 = graph.total_arc_weight();
    if total == 0.0 {
        return vec![if n > 0 { 1.0 / n as f64 } else { 0.0 }; n];
    }
    let isolated = graph.nodes().filter(|&u| graph.out_degree(u) == 0).count();
    if isolated == 0 {
        (0..n as u32).map(|u| graph.out_weight(u) / total).collect()
    } else {
        // Give isolated vertices a tiny uniform share so node flows stay a
        // probability distribution.
        let eps = 1e-12;
        let iso_mass = eps * isolated as f64;
        (0..n as u32)
            .map(|u| {
                if graph.out_degree(u) == 0 {
                    eps
                } else {
                    graph.out_weight(u) / total * (1.0 - iso_mass)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::GraphBuilder;

    fn assert_prob_dist(p: &[f64]) {
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sums to {sum}");
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn cycle_is_uniform() {
        let mut b = GraphBuilder::directed(4);
        for u in 0..4u32 {
            b.add_edge(u, (u + 1) % 4, 1.0);
        }
        let g = b.build();
        let pr = pagerank(&g, 0.15, 1e-12, 500);
        assert_prob_dist(&pr.rank);
        for &r in &pr.rank {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_attracts_rank() {
        // Star pointing at the centre.
        let mut b = GraphBuilder::directed(5);
        for u in 1..5u32 {
            b.add_edge(u, 0, 1.0);
        }
        let g = b.build();
        let pr = pagerank(&g, 0.15, 1e-12, 500);
        assert_prob_dist(&pr.rank);
        assert!(pr.rank[0] > 3.0 * pr.rank[1]);
    }

    #[test]
    fn dangling_mass_recycles() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0); // 2 is dangling
        let g = b.build();
        let pr = pagerank(&g, 0.15, 1e-12, 500);
        assert_prob_dist(&pr.rank);
        assert!(pr.rank[2] > 0.0);
    }

    #[test]
    fn weights_matter() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1, 9.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 0, 1.0);
        b.add_edge(2, 0, 1.0);
        let g = b.build();
        let pr = pagerank(&g, 0.15, 1e-12, 500);
        assert!(pr.rank[1] > 2.0 * pr.rank[2]);
    }

    #[test]
    fn undirected_matches_strength() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 3.0);
        let g = b.build();
        let p = undirected_stationary(&g);
        assert_prob_dist(&p);
        // strengths: 1, 4, 3 of total arc weight 8.
        assert!((p[0] - 1.0 / 8.0).abs() < 1e-12);
        assert!((p[1] - 4.0 / 8.0).abs() < 1e-12);
        assert!((p[2] - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_stationary_is_pagerank_fixed_point_without_teleport() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 1.0);
        let g = b.build();
        let analytic = undirected_stationary(&g);
        let pr = pagerank(&g, 0.0, 1e-14, 2000);
        for (a, b) in analytic.iter().zip(pr.rank.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
