//! Algorithm configuration.

use serde::{Deserialize, Serialize};

/// Which flow accumulator the host decision phase uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AccumulatorKind {
    /// SPA when the level's node count fits `spa_budget`, hash otherwise.
    #[default]
    Auto,
    /// Always the sparse-accumulator fast path
    /// ([`crate::local_move::SpaAccumulator`]).
    Spa,
    /// Always the hash path ([`crate::local_move::FastAccumulator`]) — the
    /// pre-SPA reference used for benchmarking.
    Hash,
}

/// The order vertices are visited within one local-move sweep.
///
/// Reordering is *free* semantically: per-vertex decisions are evaluated
/// against a frozen label snapshot and the decision stream is re-sorted by
/// vertex id before application, so every order yields bit-identical
/// partitions. What changes is cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VertexOrder {
    /// The active set's natural (ascending vertex id) order.
    #[default]
    Input,
    /// Descending degree: hubs first, so their large neighbour rows are
    /// walked while the module-flow arrays are still warm and the long
    /// tail of low-degree vertices reuses hot lines.
    DegreeDesc,
    /// Cache-blocked: vertices grouped into fixed-size id blocks
    /// ([`crate::kernel::SWEEP_BLOCK`]), descending degree within a block.
    /// Consecutive sweep vertices then share neighbour and label cache
    /// lines (graph locality) while keeping the hub-first benefit locally.
    Blocked,
}

/// Parameters of the Infomap run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfomapConfig {
    /// Teleportation probability τ for the directed PageRank (the paper's
    /// flow model computes "vertex visit rate, i.e., the PageRank p_α ...
    /// taking teleportation τ into account"). Unused for undirected graphs,
    /// whose stationary distribution is analytic.
    pub teleport: f64,
    /// PageRank convergence tolerance (L1 change per iteration).
    pub pagerank_tol: f64,
    /// PageRank iteration cap.
    pub pagerank_max_iters: usize,
    /// Maximum local-move sweeps per level before coarsening.
    pub max_sweeps: usize,
    /// Maximum coarsening levels.
    pub max_levels: usize,
    /// Minimum codelength improvement (bits) for a sweep/level to count as
    /// progress.
    pub min_improvement: f64,
    /// Number of worker threads for the parallel phase; 0 = rayon default.
    pub threads: usize,
    /// Encode teleport steps in the codelength (the original Rosvall 2008
    /// convention of the paper's Eq. 1). Off by default: modern Infomap
    /// (and HyPC-Map) use unrecorded teleportation.
    pub recorded_teleport: bool,
    /// Outer multilevel⇄refinement alternations (Rosvall's fine-tuning):
    /// 1 = plain multilevel, 2 = one refinement pass over the original
    /// vertices followed by re-aggregation, and so on. Applies identically
    /// to the host, native, and simulated drivers (they share the
    /// schedule).
    pub outer_loops: usize,
    /// Accumulator selection for the host decision phase. Semantics are
    /// identical across kinds; only wall-clock cost differs.
    pub accumulator: AccumulatorKind,
    /// Largest per-level node count the SPA fast path accepts under
    /// [`AccumulatorKind::Auto`]. Each worker's dense arrays (one value +
    /// one stamp array per flow direction) cost 24 bytes per node at this
    /// size.
    pub spa_budget: usize,
    /// Sweep visit order (cache locality only; results are identical
    /// across orders).
    pub vertex_order: VertexOrder,
}

impl InfomapConfig {
    /// The [`crate::mapeq::TeleportMode`] implied by this configuration.
    pub fn teleport_mode(&self) -> crate::mapeq::TeleportMode {
        if self.recorded_teleport {
            crate::mapeq::TeleportMode::Recorded { tau: self.teleport }
        } else {
            crate::mapeq::TeleportMode::Unrecorded
        }
    }
}

impl Default for InfomapConfig {
    fn default() -> Self {
        Self {
            teleport: 0.15,
            pagerank_tol: 1e-12,
            pagerank_max_iters: 200,
            max_sweeps: 20,
            max_levels: 12,
            min_improvement: 1e-10,
            threads: 0,
            recorded_teleport: false,
            outer_loops: 2,
            accumulator: AccumulatorKind::default(),
            spa_budget: 1 << 22,
            vertex_order: VertexOrder::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = InfomapConfig::default();
        assert!(c.teleport > 0.0 && c.teleport < 1.0);
        assert!(c.max_sweeps > 0 && c.max_levels > 0);
    }
}
