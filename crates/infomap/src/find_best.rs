//! The `FindBestCommunity` kernel (paper Algorithms 1 & 2).
//!
//! For one vertex/supernode the kernel (a) accumulates its outgoing flow per
//! neighbouring module and its incoming flow per neighbouring module — the
//! hash-heavy part the paper accelerates — then (b) evaluates the map-
//! equation delta of moving into each candidate module and returns the best.
//!
//! The kernel is generic over the accumulation device
//! ([`FlowAccumulator`]): plugging in
//! [`asa_hashsim::ChainedAccumulator`] yields Algorithm 1 (Baseline),
//! plugging in [`asa_accel::AsaAccumulator`] yields Algorithm 2 (ASA).
//! Everything outside the device — neighbour iteration, module-id loads,
//! candidate evaluation — is charged to the sink identically for both, so
//! simulated differences come only from the device.

use asa_graph::NodeId;
use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{EventSink, InstrClass};

use crate::flow::FlowNetwork;
use crate::mapeq::{MapState, ModuleFlows};

/// Synthetic address of the `node[v].modId` array (Algorithm 1 line 5 reads
/// it per neighbour).
const MODID_BASE: u64 = 0xA000_0000;
/// Synthetic address of per-module statistics read during evaluation.
const MODSTAT_BASE: u64 = 0xB000_0000;

/// Branch site: "does this candidate improve on the best so far?"
/// (Algorithm 1 line 21) — data-dependent and hard to predict.
const SITE_BEST_UPDATE: u32 = 0x300;
/// Loop-continuation branch of the out-link loop (Algorithm 1 line 4).
/// Power-law degree sequences make the trip counts irregular, so the exit
/// direction of these short loops mispredicts frequently — on *both* the
/// Baseline and the ASA path, exactly as in the compiled kernel.
const SITE_OUT_LOOP: u32 = 0x301;
/// Loop-continuation branch of the in-link loop.
const SITE_IN_LOOP: u32 = 0x302;
/// Loop-continuation branch of the candidate-evaluation loop
/// (Algorithm 1 line 16).
const SITE_CAND_LOOP: u32 = 0x303;

/// Outcome of evaluating one vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveDecision {
    /// The vertex examined.
    pub vertex: NodeId,
    /// Module minimizing the codelength delta (may equal the current one).
    pub best_module: u32,
    /// Delta codelength (bits) of moving there; ≤ 0.
    pub delta: f64,
}

/// Reusable buffers for the kernel, one per worker.
#[derive(Debug, Default)]
pub struct FindBestScratch {
    out_pairs: Vec<(u32, f64)>,
    in_pairs: Vec<(u32, f64)>,
    candidates: Vec<(u32, ModuleFlows)>,
}

/// Runs `FindBestCommunity` for vertex `u` against a label snapshot.
///
/// `labels` is the current module assignment (possibly slightly stale in
/// the parallel phase, exactly as in HyPC-Map); `state` carries module
/// exit/flow statistics consistent with `labels`.
pub fn find_best_community<A: FlowAccumulator, S: EventSink>(
    flow: &FlowNetwork,
    labels: &[u32],
    state: &MapState,
    u: NodeId,
    acc: &mut A,
    sink: &mut S,
    scratch: &mut FindBestScratch,
) -> MoveDecision {
    let my_module = labels[u as usize];

    // --- Accumulate outgoing flow per neighbouring module (Alg. 1 ln 4-13,
    // Alg. 2 ln 5-8).
    acc.begin(sink);
    for (v, f) in flow.out_arcs(u) {
        sink.branch(SITE_OUT_LOOP, true); // loop continues
                                          // `node.at(link.first).modId`: one load into the node table.
        sink.mem_read(MODID_BASE + v as u64 * 4);
        sink.instr(InstrClass::Alu, 2); // index math + loop overhead
        acc.accumulate(labels[v as usize], f, sink);
    }
    sink.branch(SITE_OUT_LOOP, false); // loop exit
    acc.gather(&mut scratch.out_pairs, sink);

    // --- Accumulate incoming flow (Alg. 1 ln 14, Alg. 2 ln 13).
    acc.begin(sink);
    for (v, f) in flow.in_arcs(u) {
        sink.branch(SITE_IN_LOOP, true);
        sink.mem_read(MODID_BASE + v as u64 * 4);
        sink.instr(InstrClass::Alu, 2);
        acc.accumulate(labels[v as usize], f, sink);
    }
    sink.branch(SITE_IN_LOOP, false);
    acc.gather(&mut scratch.in_pairs, sink);

    // --- Merge the two gathered lists into per-module (out, in) pairs.
    // Sort + merge-join; charged as ALU work (predictable short loops).
    let n_out = scratch.out_pairs.len();
    let n_in = scratch.in_pairs.len();
    scratch.out_pairs.sort_unstable_by_key(|&(k, _)| k);
    scratch.in_pairs.sort_unstable_by_key(|&(k, _)| k);
    let log2 = |n: usize| usize::BITS - n.leading_zeros().min(31);
    sink.instr(
        InstrClass::Alu,
        (n_out * log2(n_out) as usize + n_in * log2(n_in) as usize + n_out + n_in) as u64 + 2,
    );

    scratch.candidates.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n_out || j < n_in {
        let next_key = match (scratch.out_pairs.get(i), scratch.in_pairs.get(j)) {
            (Some(&(ko, _)), Some(&(ki, _))) => ko.min(ki),
            (Some(&(ko, _)), None) => ko,
            (None, Some(&(ki, _))) => ki,
            (None, None) => unreachable!(),
        };
        let mut mf = ModuleFlows::default();
        if i < n_out && scratch.out_pairs[i].0 == next_key {
            mf.out_flow = scratch.out_pairs[i].1;
            i += 1;
        }
        if j < n_in && scratch.in_pairs[j].0 == next_key {
            mf.in_flow = scratch.in_pairs[j].1;
            j += 1;
        }
        scratch.candidates.push((next_key, mf));
    }

    // --- Evaluate candidates (Alg. 1 ln 15-25 / Alg. 2 ln 14).
    let flows_old = scratch
        .candidates
        .iter()
        .find(|&&(m, _)| m == my_module)
        .map(|&(_, mf)| mf)
        .unwrap_or_default();
    let node = flow.node_summary(u);

    let mut best = MoveDecision {
        vertex: u,
        best_module: my_module,
        delta: 0.0,
    };
    for &(m, mf) in scratch.candidates.iter() {
        sink.branch(SITE_CAND_LOOP, true);
        if m == my_module {
            continue;
        }
        // Module statistics loads + the FP work of the delta codelength
        // (four plogp evaluations and their argument arithmetic — the
        // `calc(...)` call of Algorithm 1 line 20).
        sink.mem_read(MODSTAT_BASE + m as u64 * 16);
        sink.mem_read(MODSTAT_BASE + m as u64 * 16 + 8);
        sink.instr(InstrClass::Float, 16);
        sink.instr(InstrClass::Alu, 4);
        let delta = state.delta_move(my_module, m, &node, flows_old, mf);
        // Tie-break deterministically on module id so parallel and
        // sequential schedules agree.
        let improves =
            delta < best.delta - 1e-15 || (delta < best.delta + 1e-15 && m < best.best_module);
        sink.branch(SITE_BEST_UPDATE, improves);
        if improves && delta < -1e-15 {
            best.best_module = m;
            best.delta = delta;
        }
    }
    sink.branch(SITE_CAND_LOOP, false);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use crate::mapeq::{codelength, module_flows_of};
    use asa_graph::{GraphBuilder, Partition};
    use asa_simarch::accum::OracleAccumulator;
    use asa_simarch::events::NullSink;

    fn two_triangles_flow() -> FlowNetwork {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        FlowNetwork::from_graph(&b.build(), &InfomapConfig::default())
    }

    #[test]
    fn pulls_vertex_into_its_triangle() {
        let flow = two_triangles_flow();
        // Vertex 2 mislabeled into the right-hand triangle's module.
        let partition = Partition::from_labels(vec![0, 0, 1, 1, 1, 1]);
        let state = MapState::new(&flow, &partition);
        let mut acc = OracleAccumulator::default();
        let mut scratch = FindBestScratch::default();
        let d = find_best_community(
            &flow,
            partition.labels(),
            &state,
            2,
            &mut acc,
            &mut NullSink,
            &mut scratch,
        );
        assert_eq!(d.best_module, 0);
        assert!(d.delta < 0.0);
        // The reported delta matches a full recomputation.
        let l0 = codelength(&flow, &partition);
        let mut moved = partition.clone();
        moved.assign(2, 0);
        assert!((d.delta - (codelength(&flow, &moved) - l0)).abs() < 1e-9);
    }

    #[test]
    fn stays_put_when_already_optimal() {
        let flow = two_triangles_flow();
        let partition = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let state = MapState::new(&flow, &partition);
        let mut acc = OracleAccumulator::default();
        let mut scratch = FindBestScratch::default();
        for u in 0..6u32 {
            let d = find_best_community(
                &flow,
                partition.labels(),
                &state,
                u,
                &mut acc,
                &mut NullSink,
                &mut scratch,
            );
            assert_eq!(
                d.best_module,
                partition.community_of(u),
                "vertex {u} should not move out of the optimum"
            );
        }
    }

    #[test]
    fn accumulated_flows_match_oracle_helper() {
        let flow = two_triangles_flow();
        let partition = Partition::from_labels(vec![0, 0, 1, 1, 2, 2]);
        let state = MapState::new(&flow, &partition);
        let mut acc = OracleAccumulator::default();
        let mut scratch = FindBestScratch::default();
        let _ = find_best_community(
            &flow,
            partition.labels(),
            &state,
            2,
            &mut acc,
            &mut NullSink,
            &mut scratch,
        );
        for &(m, mf) in scratch.candidates.iter() {
            let expect = module_flows_of(&flow, &partition, 2, m);
            assert!((mf.out_flow - expect.out_flow).abs() < 1e-12);
            assert!((mf.in_flow - expect.in_flow).abs() < 1e-12);
        }
    }

    #[test]
    fn isolated_vertex_never_moves() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1, 1.0);
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let partition = Partition::singletons(3);
        let state = MapState::new(&flow, &partition);
        let mut acc = OracleAccumulator::default();
        let mut scratch = FindBestScratch::default();
        let d = find_best_community(
            &flow,
            partition.labels(),
            &state,
            2,
            &mut acc,
            &mut NullSink,
            &mut scratch,
        );
        assert_eq!(d.best_module, partition.community_of(2));
        assert_eq!(d.delta, 0.0);
    }
}
