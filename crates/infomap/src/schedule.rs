//! The multilevel optimization schedule, shared by every driver.
//!
//! Three execution modes run the exact same control flow — the host
//! (rayon) driver, the wall-clock "native" driver, and the simulated
//! (per-core device) driver — differing only in *how* a sweep's decisions
//! are computed. This module owns the control flow; drivers plug in a
//! [`DecideEngine`]. Because the schedule is shared, every mode produces
//! the identical partition for identical inputs, which the test suite
//! asserts (the accelerator must change cost, never semantics).
//!
//! The schedule implements Rosvall-style multilevel optimization with
//! fine-tuning: repeat { local-move sweeps, coarsen, ... } until no level
//! merges, then a *refinement* pass re-sweeps the original vertices
//! within the coarse solution and, if it moved anything, the multilevel
//! loop restarts from the refined partition
//! (`InfomapConfig::outer_loops` bounds the alternation).

use std::time::{Duration, Instant};

use asa_graph::{NodeId, Partition};
use asa_obs::{Obs, Value};

use crate::cancel::CancelToken;
use crate::coarsen::convert_to_supernodes;
use crate::config::InfomapConfig;
use crate::find_best::MoveDecision;
use crate::flow::FlowNetwork;
use crate::local_move::{apply_decisions, next_active_into, AppliedMoves};
use crate::mapeq::{plogp, MapState};
use crate::result::{KernelTimings, LevelInfo};

/// Everything a sweep's decision phase may need.
pub struct SweepCtx<'a> {
    /// The flow network being optimized at this level (the original
    /// network during refinement passes).
    pub flow: &'a FlowNetwork,
    /// Frozen label snapshot decisions are made against.
    pub labels: &'a [u32],
    /// Module statistics consistent with `labels`.
    pub state: &'a MapState,
    /// Vertices to evaluate.
    pub active: &'a [NodeId],
    /// Outer (refinement) iteration, 0-based.
    pub outer: usize,
    /// Hierarchy level within this outer iteration; refinement passes use
    /// [`REFINE_LEVEL`].
    pub level: usize,
    /// Sweep index within the level.
    pub sweep: usize,
}

/// Level marker for refinement passes in [`SweepCtx::level`].
pub const REFINE_LEVEL: usize = usize::MAX;

/// A pluggable decision executor.
pub trait DecideEngine {
    /// Computes improving move decisions for `ctx.active`, ordered by
    /// vertex id.
    fn decide(&mut self, ctx: &SweepCtx<'_>) -> Vec<MoveDecision>;

    /// Notification after the sweep's moves were applied, with the
    /// wall-clock duration of the decide+apply step.
    fn after_sweep(&mut self, ctx: &SweepCtx<'_>, applied: &AppliedMoves, elapsed: Duration) {
        let _ = (ctx, applied, elapsed);
    }

    /// Telemetry handle the schedule should time phases against and emit
    /// per-sweep convergence records to. Returns an owned clone so the
    /// schedule can hold it across `&mut self` calls. Defaults to disabled.
    fn obs(&self) -> Obs {
        Obs::disabled()
    }

    /// Engine-specific fields appended to each per-sweep convergence
    /// record (e.g. the accumulator path taken, device statistics). Only
    /// called when [`DecideEngine::obs`] is enabled.
    fn sweep_fields(&self, fields: &mut Vec<(&'static str, Value)>) {
        let _ = fields;
    }
}

/// Emits one per-sweep convergence record. `level` is `None` for
/// refinement passes (flagged via the `refine` field instead).
#[allow(clippy::too_many_arguments)]
fn emit_sweep_record<E: DecideEngine>(
    obs: &Obs,
    engine: &E,
    outer: usize,
    level: Option<usize>,
    sweep: usize,
    active: usize,
    moves: usize,
    codelength: f64,
    prev_codelength: f64,
    seconds: f64,
) {
    let mut fields: Vec<(&'static str, Value)> = Vec::with_capacity(12);
    fields.push(("outer", Value::from(outer)));
    if let Some(level) = level {
        fields.push(("level", Value::from(level)));
    }
    fields.push(("refine", Value::from(level.is_none())));
    fields.push(("sweep", Value::from(sweep)));
    fields.push(("active", Value::from(active)));
    fields.push(("moves", Value::from(moves)));
    fields.push(("codelength", Value::from(codelength)));
    fields.push(("dl", Value::from(codelength - prev_codelength)));
    fields.push(("seconds", Value::from(seconds)));
    engine.sweep_fields(&mut fields);
    obs.emit("sweep", fields);
}

/// Result of the full schedule.
#[derive(Debug, Clone)]
pub struct MultilevelOutcome {
    /// Final vertex→module assignment.
    pub partition: Partition,
    /// Final codelength (vertex-level node term).
    pub codelength: f64,
    /// Codelength of the all-singletons starting point.
    pub initial_codelength: f64,
    /// Per-level statistics across all outer iterations (refinement
    /// passes flagged).
    pub levels: Vec<LevelInfo>,
    /// Hierarchy partitions of the final outer iteration.
    pub level_partitions: Vec<Partition>,
    /// Kernel timings accumulated by the schedule (`find_best`,
    /// `convert`, `update`; `pagerank` is filled by the caller).
    pub timings: KernelTimings,
    /// Whether a [`CancelToken`] stopped the run at a sweep boundary
    /// before the schedule converged. The partition is still complete and
    /// `codelength` describes it exactly; it is simply the best answer
    /// found within the allotted budget.
    pub interrupted: bool,
}

/// Runs the multilevel schedule over `flow0` with the given engine.
pub fn optimize_multilevel<E: DecideEngine>(
    flow0: &FlowNetwork,
    cfg: &InfomapConfig,
    engine: &mut E,
) -> MultilevelOutcome {
    optimize_multilevel_cancellable(flow0, cfg, engine, &CancelToken::none())
}

/// [`optimize_multilevel`] with cooperative cancellation: `cancel` is
/// polled once after every completed sweep (level and refinement passes
/// alike). When it trips, the schedule stops at that sweep boundary, folds
/// the current level's partial partition into the composed answer, and
/// returns with [`MultilevelOutcome::interrupted`] set. Until the poll
/// trips, control flow — and therefore the per-sweep convergence record
/// stream — is identical to the uncancelled run.
pub fn optimize_multilevel_cancellable<E: DecideEngine>(
    flow0: &FlowNetwork,
    cfg: &InfomapConfig,
    engine: &mut E,
    cancel: &CancelToken,
) -> MultilevelOutcome {
    let n0 = flow0.num_nodes();
    let obs = engine.obs();
    let node_plogp0: f64 = flow0.node_flows().iter().copied().map(plogp).sum();
    let mode = cfg.teleport_mode();
    let mut timings = KernelTimings::default();
    let mut levels: Vec<LevelInfo> = Vec::new();
    let mut level_partitions: Vec<Partition> = Vec::new();
    let mut composed = Partition::singletons(n0);
    let mut initial_codelength = f64::NAN;
    let mut codelength = f64::NAN;
    // Sweep-loop buffers threaded through every level and outer pass so the
    // per-sweep bookkeeping stops allocating: the next-active bitmap and
    // list, and the frozen label snapshot.
    let mut mark: Vec<bool> = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut labels: Vec<u32> = Vec::new();
    let mut interrupted = false;

    let outer_loops = cfg.outer_loops.max(1);
    for outer in 0..outer_loops {
        // --- Multilevel phase, starting from the current composition.
        // Compact in place: refinement may have emptied modules, and the
        // coarse node ids must match `composed`'s labels exactly for the
        // later `project` calls.
        level_partitions.clear();
        composed.compact();
        let mut flow = if composed.num_communities() == n0 {
            flow0.clone()
        } else {
            flow0.coarsen(&composed)
        };

        for level in 0..cfg.max_levels {
            // Covers the whole level — sweeps plus the coarsen/project
            // step — so a flight-recorder track shows one "level" box per
            // hierarchy level with "sweep" boxes nested inside.
            let _level_sp = obs.span("level");
            let mut partition = Partition::singletons(flow.num_nodes());
            let mut state = MapState::with_options(&flow, &partition, node_plogp0, mode);
            let before = state.codelength();
            if initial_codelength.is_nan() {
                initial_codelength = before;
            }
            let mut info = LevelInfo {
                nodes: flow.num_nodes(),
                sweeps: 0,
                moves: 0,
                codelength_before: before,
                codelength_after: before,
                sweep_seconds: Vec::new(),
                sweep_active: Vec::new(),
                refinement: false,
            };

            let mut active: Vec<NodeId> = (0..flow.num_nodes() as u32).collect();
            let mut prev_codelength = before;
            for sweep in 0..cfg.max_sweeps {
                if active.is_empty() {
                    break;
                }
                let _sweep_sp = obs.span("sweep");
                let t = Instant::now();
                labels.clear();
                labels.extend_from_slice(partition.labels());
                let decisions = {
                    let _sp = obs.span("decide");
                    let ctx = SweepCtx {
                        flow: &flow,
                        labels: &labels,
                        state: &state,
                        active: &active,
                        outer,
                        level,
                        sweep,
                    };
                    engine.decide(&ctx)
                };
                let applied = {
                    let _sp = obs.span("apply");
                    apply_decisions(
                        &flow,
                        &mut partition,
                        &mut state,
                        &decisions,
                        cfg.min_improvement,
                    )
                };
                let dt = t.elapsed();
                {
                    let ctx = SweepCtx {
                        flow: &flow,
                        labels: &labels,
                        state: &state,
                        active: &active,
                        outer,
                        level,
                        sweep,
                    };
                    engine.after_sweep(&ctx, &applied, dt);
                }
                timings.find_best += dt;
                // Convergence record outside the timed region: the extra
                // codelength evaluation (O(modules)) is telemetry-only and
                // must not show up in the kernel timings.
                if obs.enabled() {
                    let cl = state.codelength();
                    emit_sweep_record(
                        &obs,
                        engine,
                        outer,
                        Some(level),
                        sweep,
                        active.len(),
                        applied.applied,
                        cl,
                        prev_codelength,
                        dt.as_secs_f64(),
                    );
                    prev_codelength = cl;
                }
                info.sweeps += 1;
                info.moves += applied.applied;
                info.sweep_seconds.push(dt.as_secs_f64());
                info.sweep_active.push(active.len());
                if cancel.poll() {
                    interrupted = true;
                    obs.trace_instant("infomap.cancelled", "infomap");
                    break;
                }
                if applied.applied == 0 {
                    break;
                }
                next_active_into(&flow, &applied.moved, &mut mark, &mut next);
                std::mem::swap(&mut active, &mut next);
            }

            info.codelength_after = state.codelength();
            codelength = info.codelength_after;
            if interrupted {
                levels.push(info);
                // Keep the sweeps already paid for: fold this level's
                // partial partition onto the original vertices. Coarsening
                // preserves module flows, so `codelength` (computed on the
                // coarse state) is exactly the codelength of the folded
                // partition.
                composed = composed.project(&partition);
                break;
            }
            let improved = info.codelength_before - info.codelength_after > cfg.min_improvement;
            let merged = {
                let mut p = partition.clone();
                p.compact() < flow.num_nodes()
            };
            levels.push(info);
            if !improved || !merged {
                break;
            }

            let t = Instant::now();
            let (coarse, compact) = {
                let _sp = obs.span("coarsen");
                convert_to_supernodes(&flow, &partition)
            };
            timings.convert += t.elapsed();

            let t = Instant::now();
            composed = {
                let _sp = obs.span("project");
                composed.project(&compact)
            };
            timings.update += t.elapsed();
            level_partitions.push(composed.clone());

            flow = coarse;
        }

        // --- Refinement (fine-tuning) phase on the original vertices,
        // only when another multilevel pass could consume it.
        if interrupted || outer + 1 >= outer_loops {
            break;
        }
        // Covers the whole fine-tuning pass; its sweeps nest inside.
        let _refine_sp = obs.span("refine");
        composed.compact();
        let mut state = MapState::with_options(flow0, &composed, node_plogp0, mode);
        let before = state.codelength();
        let mut info = LevelInfo {
            nodes: n0,
            sweeps: 0,
            moves: 0,
            codelength_before: before,
            codelength_after: before,
            sweep_seconds: Vec::new(),
            sweep_active: Vec::new(),
            refinement: true,
        };
        let mut active: Vec<NodeId> = (0..n0 as u32).collect();
        let mut total_moves = 0usize;
        let mut prev_codelength = before;
        for sweep in 0..cfg.max_sweeps {
            if active.is_empty() {
                break;
            }
            let _sweep_sp = obs.span("sweep");
            let t = Instant::now();
            labels.clear();
            labels.extend_from_slice(composed.labels());
            let decisions = {
                let _sp = obs.span("decide");
                let ctx = SweepCtx {
                    flow: flow0,
                    labels: &labels,
                    state: &state,
                    active: &active,
                    outer,
                    level: REFINE_LEVEL,
                    sweep,
                };
                engine.decide(&ctx)
            };
            let applied = {
                let _sp = obs.span("apply");
                apply_decisions(
                    flow0,
                    &mut composed,
                    &mut state,
                    &decisions,
                    cfg.min_improvement,
                )
            };
            let dt = t.elapsed();
            {
                let ctx = SweepCtx {
                    flow: flow0,
                    labels: &labels,
                    state: &state,
                    active: &active,
                    outer,
                    level: REFINE_LEVEL,
                    sweep,
                };
                engine.after_sweep(&ctx, &applied, dt);
            }
            timings.find_best += dt;
            if obs.enabled() {
                let cl = state.codelength();
                emit_sweep_record(
                    &obs,
                    engine,
                    outer,
                    None,
                    sweep,
                    active.len(),
                    applied.applied,
                    cl,
                    prev_codelength,
                    dt.as_secs_f64(),
                );
                prev_codelength = cl;
            }
            info.sweeps += 1;
            info.moves += applied.applied;
            info.sweep_seconds.push(dt.as_secs_f64());
            info.sweep_active.push(active.len());
            total_moves += applied.applied;
            if cancel.poll() {
                interrupted = true;
                obs.trace_instant("infomap.cancelled", "infomap");
                break;
            }
            if applied.applied == 0 {
                break;
            }
            next_active_into(flow0, &applied.moved, &mut mark, &mut next);
            std::mem::swap(&mut active, &mut next);
        }
        info.codelength_after = state.codelength();
        codelength = info.codelength_after;
        levels.push(info);
        // Refinement edits `composed` in place, so an interrupt here needs
        // no folding — the partial refinement is already the answer.
        if interrupted || total_moves == 0 {
            break;
        }
    }

    composed.compact();
    if level_partitions.is_empty() {
        level_partitions.push(composed.clone());
    } else {
        // The final refinement may have adjusted individual vertices; keep
        // the hierarchy's coarsest entry in sync with the final answer.
        *level_partitions.last_mut().unwrap() = composed.clone();
    }

    MultilevelOutcome {
        partition: composed,
        codelength,
        initial_codelength,
        levels,
        level_partitions,
        timings,
        interrupted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_move::parallel_decide;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::GraphBuilder;

    struct HostEngine;
    impl DecideEngine for HostEngine {
        fn decide(&mut self, ctx: &SweepCtx<'_>) -> Vec<MoveDecision> {
            parallel_decide(ctx.flow, ctx.labels, ctx.state, ctx.active)
        }
    }

    fn planted_flow() -> FlowNetwork {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 5,
                community_size: 40,
                k_in: 10.0,
                k_out: 1.5,
            },
            8,
        );
        FlowNetwork::from_graph(&g, &InfomapConfig::default())
    }

    #[test]
    fn refinement_never_hurts() {
        let flow = planted_flow();
        let one_pass = optimize_multilevel(
            &flow,
            &InfomapConfig {
                outer_loops: 1,
                ..Default::default()
            },
            &mut HostEngine,
        );
        let refined = optimize_multilevel(
            &flow,
            &InfomapConfig {
                outer_loops: 3,
                ..Default::default()
            },
            &mut HostEngine,
        );
        assert!(refined.codelength <= one_pass.codelength + 1e-9);
        assert!(refined.levels.len() >= one_pass.levels.len());
    }

    #[test]
    fn refinement_levels_flagged() {
        let flow = planted_flow();
        let outcome = optimize_multilevel(
            &flow,
            &InfomapConfig {
                outer_loops: 2,
                ..Default::default()
            },
            &mut HostEngine,
        );
        // With 2 outer loops there is exactly one refinement pass recorded
        // (possibly with zero moves).
        assert_eq!(outcome.levels.iter().filter(|l| l.refinement).count(), 1);
    }

    #[test]
    fn refinement_that_empties_modules_survives_reaggregation() {
        // Regression: a refinement move that empties a module used to leave
        // `composed` non-compact, crashing the next outer pass's `project`.
        // LFR graphs at moderate mixing reliably trigger it.
        use asa_graph::generators::{lfr_benchmark, LfrConfig};
        for seed in [44u64, 45, 46] {
            let lfr = lfr_benchmark(
                &LfrConfig {
                    n: 1200,
                    mu: 0.3,
                    ..Default::default()
                },
                seed,
            );
            let flow = FlowNetwork::from_graph(&lfr.graph, &InfomapConfig::default());
            let outcome = optimize_multilevel(
                &flow,
                &InfomapConfig {
                    outer_loops: 3,
                    ..Default::default()
                },
                &mut HostEngine,
            );
            assert!(outcome.codelength.is_finite());
        }
    }

    #[test]
    fn two_triangles_schedule() {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let outcome = optimize_multilevel(&flow, &InfomapConfig::default(), &mut HostEngine);
        assert_eq!(outcome.partition.num_communities(), 2);
        assert!(outcome.codelength < outcome.initial_codelength);
        assert_eq!(
            outcome.level_partitions.last().unwrap().labels(),
            outcome.partition.labels()
        );
    }
}
