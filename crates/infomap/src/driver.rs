//! Multi-level Infomap driver (uninstrumented, wall-clock timed).
//!
//! Control flow lives in [`crate::schedule`]; this driver supplies the
//! host-parallel (rayon) decision engine and the public API.

use std::cell::Cell;
use std::time::Instant;

use asa_graph::CsrGraph;
use asa_obs::{Obs, Value};

use crate::cancel::CancelToken;
use crate::config::{AccumulatorKind, InfomapConfig, VertexOrder};
use crate::find_best::MoveDecision;
use crate::flow::FlowNetwork;
use crate::kernel;
use crate::local_move::{parallel_decide, parallel_decide_spa_phased, KernelCounters, ScratchPool};
use crate::result::InfomapResult;
use crate::schedule::{optimize_multilevel_cancellable, DecideEngine, SweepCtx};

/// The host-parallel decision engine: rayon work over the active set with
/// pooled per-worker scratch. Depending on the configured
/// [`AccumulatorKind`] and budget, each sweep runs either the
/// [`crate::local_move::SpaAccumulator`] fast path or the
/// [`crate::local_move::FastAccumulator`] hash path — both produce the
/// identical decision stream.
#[derive(Debug, Default)]
pub struct HostEngine {
    kind: AccumulatorKind,
    spa_budget: usize,
    order: VertexOrder,
    /// Reused buffer for the reordered sweep schedule (empty while
    /// `VertexOrder::Input`, which iterates the active set directly).
    order_buf: Vec<u32>,
    scratch: ScratchPool,
    obs: Obs,
    /// Whether the most recent sweep took the SPA fast path.
    last_spa: bool,
    /// Scratch-pool (hits, misses) at the previous sweep record, so each
    /// convergence record carries per-sweep deltas rather than lifetime
    /// totals. `Cell` because `sweep_fields` takes `&self`.
    scratch_seen: Cell<(u64, u64)>,
    /// Kernel counters at the previous sweep record (same delta scheme).
    kernel_seen: Cell<KernelCounters>,
}

impl HostEngine {
    /// An engine following `cfg`'s accumulator selection.
    pub fn from_config(cfg: &InfomapConfig) -> Self {
        Self::with_obs(cfg, &Obs::disabled())
    }

    /// [`HostEngine::from_config`] plus a telemetry handle: the schedule
    /// will time decide/apply phases against it and emit per-sweep
    /// convergence records carrying this engine's path and scratch stats.
    pub fn with_obs(cfg: &InfomapConfig, obs: &Obs) -> Self {
        Self {
            kind: cfg.accumulator,
            spa_budget: cfg.spa_budget,
            order: cfg.vertex_order,
            order_buf: Vec::new(),
            scratch: ScratchPool::new(),
            obs: obs.clone(),
            last_spa: false,
            scratch_seen: Cell::new((0, 0)),
            kernel_seen: Cell::new(KernelCounters::default()),
        }
    }
}

impl DecideEngine for HostEngine {
    fn decide(&mut self, ctx: &SweepCtx<'_>) -> Vec<MoveDecision> {
        self.last_spa = match self.kind {
            AccumulatorKind::Spa => true,
            AccumulatorKind::Hash => false,
            AccumulatorKind::Auto => ctx.flow.num_nodes() <= self.spa_budget,
        };
        // Reorder the sweep schedule for cache locality; decisions are
        // re-sorted by vertex id downstream, so results are unaffected.
        let order = kernel::sweep_order(ctx.flow, ctx.active, self.order, &mut self.order_buf);
        // Sampling-profiler leaf label: flamegraphs of a serving engine
        // distinguish hash vs portable-SPA vs AVX2 sweeps (and their
        // schedule order) without a span per sweep.
        if self.obs.profiler_enabled() {
            self.obs.prof_label(&format!(
                "kernel={},order={}",
                if self.last_spa {
                    kernel::kernel_path_name()
                } else {
                    "hash"
                },
                kernel::order_name(self.order),
            ));
        }
        let decisions = if self.last_spa {
            let phases = kernel::phase_timing().then(kernel::global_phase_times);
            parallel_decide_spa_phased(
                ctx.flow,
                ctx.labels,
                ctx.state,
                order,
                &self.scratch,
                phases,
            )
        } else {
            parallel_decide(ctx.flow, ctx.labels, ctx.state, order)
        };
        if self.obs.profiler_enabled() {
            self.obs.prof_label("");
        }
        decisions
    }

    fn obs(&self) -> Obs {
        self.obs.clone()
    }

    fn sweep_fields(&self, fields: &mut Vec<(&'static str, Value)>) {
        fields.push((
            "path",
            Value::from(if self.last_spa { "spa" } else { "hash" }),
        ));
        fields.push((
            "kernel",
            Value::from(if self.last_spa {
                kernel::kernel_path_name()
            } else {
                "hash"
            }),
        ));
        fields.push(("order", Value::from(kernel::order_name(self.order))));
        let (hits, misses) = self.scratch.stats();
        let (seen_h, seen_m) = self.scratch_seen.get();
        self.scratch_seen.set((hits, misses));
        let (dh, dm) = (hits - seen_h, misses - seen_m);
        fields.push(("scratch_hits", Value::from(dh)));
        fields.push(("scratch_misses", Value::from(dm)));
        if dh + dm > 0 {
            fields.push((
                "scratch_hit_rate",
                Value::from(dh as f64 / (dh + dm) as f64),
            ));
        }
        // Kernel counter deltas: SPA touched-list clears (the O(touched)
        // reset discipline) and scan-term cache effectiveness this sweep.
        let k = self.scratch.kernel_stats();
        let seen = self.kernel_seen.get();
        self.kernel_seen.set(k);
        fields.push((
            "spa_reset_calls",
            Value::from(k.spa_reset_calls - seen.spa_reset_calls),
        ));
        fields.push((
            "spa_reset_entries",
            Value::from(k.spa_reset_entries - seen.spa_reset_entries),
        ));
        let (df, dht) = (
            k.term_cache_fills - seen.term_cache_fills,
            k.term_cache_hits - seen.term_cache_hits,
        );
        fields.push(("term_cache_fills", Value::from(df)));
        fields.push(("term_cache_hits", Value::from(dht)));
    }
}

/// The community-detection pipeline. See [`detect_communities`] for the
/// one-call entry point.
#[derive(Debug, Clone, Default)]
pub struct Infomap {
    cfg: InfomapConfig,
}

impl Infomap {
    /// Builds a runner with the given configuration.
    pub fn new(cfg: InfomapConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InfomapConfig {
        &self.cfg
    }

    /// Runs the full multi-level pipeline on `graph`.
    pub fn run(&self, graph: &CsrGraph) -> InfomapResult {
        self.run_observed(graph, &Obs::disabled())
    }

    /// [`Infomap::run`] with a telemetry handle: phase spans (`infomap` →
    /// `pagerank`/`optimize` → `decide`/`apply`/`coarsen`/`project`) and a
    /// per-sweep convergence record stream. With `Obs::disabled()` this is
    /// byte-for-byte the plain run.
    pub fn run_observed(&self, graph: &CsrGraph, obs: &Obs) -> InfomapResult {
        self.run_cancellable(graph, obs, &CancelToken::none())
    }

    /// [`Infomap::run_observed`] with cooperative cancellation: `cancel` is
    /// polled at every sweep boundary (see
    /// [`crate::schedule::optimize_multilevel_cancellable`]). When it trips
    /// the run stops there and returns the best partition found so far with
    /// [`InfomapResult::interrupted`] set. With `CancelToken::none()` this
    /// is byte-for-byte the plain run.
    pub fn run_cancellable(
        &self,
        graph: &CsrGraph,
        obs: &Obs,
        cancel: &CancelToken,
    ) -> InfomapResult {
        let _run = obs.span("infomap");
        // --- PageRank kernel: stationary visit rates + flow network.
        let t = Instant::now();
        let flow = {
            let _sp = obs.span("pagerank");
            FlowNetwork::from_graph(graph, &self.cfg)
        };
        let pagerank = t.elapsed();

        let mut engine = HostEngine::with_obs(&self.cfg, obs);
        let outcome = {
            let _sp = obs.span("optimize");
            optimize_multilevel_cancellable(&flow, &self.cfg, &mut engine, cancel)
        };
        let mut timings = outcome.timings;
        timings.pagerank = pagerank;

        InfomapResult {
            partition: outcome.partition,
            codelength: outcome.codelength,
            initial_codelength: outcome.initial_codelength,
            levels: outcome.levels,
            level_partitions: outcome.level_partitions,
            timings,
            interrupted: outcome.interrupted,
        }
    }
}

/// Detects communities in `graph` with `cfg`, returning the partition,
/// codelength, level statistics, and kernel timings.
///
/// ```
/// use asa_graph::generators::{planted_partition, PlantedConfig};
/// use asa_infomap::{detect_communities, InfomapConfig};
///
/// let (graph, truth) = planted_partition(
///     &PlantedConfig { communities: 4, community_size: 30, k_in: 10.0, k_out: 0.5 },
///     42,
/// );
/// let result = detect_communities(&graph, &InfomapConfig::default());
/// assert_eq!(result.num_communities(), truth.num_communities());
/// ```
pub fn detect_communities(graph: &CsrGraph, cfg: &InfomapConfig) -> InfomapResult {
    Infomap::new(cfg.clone()).run(graph)
}

/// [`detect_communities`] with telemetry: spans and per-sweep convergence
/// records flow into `obs`'s sinks. Identical result to the plain call.
pub fn detect_communities_observed(
    graph: &CsrGraph,
    cfg: &InfomapConfig,
    obs: &Obs,
) -> InfomapResult {
    Infomap::new(cfg.clone()).run_observed(graph, obs)
}

/// [`detect_communities`] on the degree-ordered renumbering of `graph`:
/// the CSR is permuted so high-degree hubs occupy a dense low id range
/// (warm adjacency and label lines across a sweep chunk), the detector
/// runs on the isomorphic copy, and every returned partition is mapped
/// back to the original vertex ids. Codelength and community structure
/// are those of the renumbered run — bit-identical module *content*, but
/// the sweep visits vertices in a different order than an un-renumbered
/// run, so the partitions may differ the way any two legal sweep orders
/// may. Combine with [`VertexOrder::Input`] to let the renumbering alone
/// define locality, or [`VertexOrder::Blocked`] to additionally block the
/// sweep.
pub fn detect_communities_renumbered(graph: &CsrGraph, cfg: &InfomapConfig) -> InfomapResult {
    let perm = asa_graph::degree_order(graph);
    let renumbered = asa_graph::renumber(graph, &perm);
    let mut result = Infomap::new(cfg.clone()).run(&renumbered);
    result.partition = perm.map_partition_back(&result.partition);
    for p in &mut result.level_partitions {
        *p = perm.map_partition_back(p);
    }
    result
}

/// [`detect_communities`] with cooperative cancellation: the run stops at
/// the first sweep boundary after `cancel` trips (deadline, manual cancel,
/// or poll budget) and returns the best partition found so far, flagged
/// via [`InfomapResult::interrupted`]. The serving layer threads each
/// request's deadline token through this entry point.
pub fn detect_communities_cancellable(
    graph: &CsrGraph,
    cfg: &InfomapConfig,
    obs: &Obs,
    cancel: &CancelToken,
) -> InfomapResult {
    Infomap::new(cfg.clone()).run_cancellable(graph, obs, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::generators::{lfr_benchmark, planted_partition, LfrConfig, PlantedConfig};
    use asa_graph::GraphBuilder;

    #[test]
    fn two_triangles_end_to_end() {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let result = detect_communities(&b.build(), &InfomapConfig::default());
        assert_eq!(result.num_communities(), 2);
        assert!(result.codelength < result.initial_codelength);
        assert!(result.compression() > 0.0);
    }

    #[test]
    fn renumbered_run_maps_partition_back() {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 30,
                k_in: 10.0,
                k_out: 0.5,
            },
            7,
        );
        let plain = detect_communities(&g, &InfomapConfig::default());
        let renum = detect_communities_renumbered(&g, &InfomapConfig::default());
        assert_eq!(renum.partition.len(), g.num_nodes());
        // Both sweep orders recover the well-separated planted structure,
        // and the mapped-back partition describes the original ids.
        assert_eq!(renum.num_communities(), truth.num_communities());
        assert_eq!(plain.num_communities(), renum.num_communities());
        assert!((renum.codelength - plain.codelength).abs() < 1e-9);
        for c in 0..truth.num_communities() as u32 {
            let members: Vec<u32> = (0..g.num_nodes() as u32)
                .filter(|&u| truth.community_of(u) == c)
                .collect();
            let label = renum.partition.community_of(members[0]);
            assert!(
                members
                    .iter()
                    .all(|&u| renum.partition.community_of(u) == label),
                "planted community {c} split after map-back"
            );
        }
    }

    #[test]
    fn planted_partition_recovered() {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 8,
                community_size: 40,
                k_in: 12.0,
                k_out: 1.0,
            },
            11,
        );
        let result = detect_communities(&g, &InfomapConfig::default());
        assert_eq!(result.num_communities(), truth.num_communities());
        // Every planted community maps to exactly one detected community.
        let mut seen = std::collections::HashMap::new();
        for u in 0..g.num_nodes() as u32 {
            let t = truth.community_of(u);
            let d = result.partition.community_of(u);
            let entry = seen.entry(t).or_insert(d);
            assert_eq!(*entry, d, "vertex {u} split off its planted community");
        }
    }

    #[test]
    fn hierarchy_partitions_refine() {
        let lfr = lfr_benchmark(
            &LfrConfig {
                n: 500,
                mu: 0.25,
                ..Default::default()
            },
            9,
        );
        let result = detect_communities(&lfr.graph, &InfomapConfig::default());
        assert!(result.hierarchy_depth() >= 1);
        // Within the final outer pass, each successive level partition is a
        // coarsening of its predecessor (the last entry may additionally
        // carry refinement adjustments, so skip it in the nesting check).
        let check = &result.level_partitions[..result.level_partitions.len().saturating_sub(1)];
        for w in check.windows(2) {
            assert!(w[1].num_communities() <= w[0].num_communities());
            let mut map = std::collections::HashMap::new();
            for u in 0..w[0].len() as u32 {
                let fine = w[0].community_of(u);
                let coarse = w[1].community_of(u);
                let entry = map.entry(fine).or_insert(coarse);
                assert_eq!(*entry, coarse, "level partitions must nest");
            }
        }
        // The coarsest level is the final answer.
        assert_eq!(
            result.level_partitions.last().unwrap().labels(),
            result.partition.labels()
        );
    }

    #[test]
    fn codelength_decreases_with_levels() {
        let lfr = lfr_benchmark(
            &LfrConfig {
                n: 600,
                mu: 0.2,
                ..Default::default()
            },
            5,
        );
        let result = detect_communities(&lfr.graph, &InfomapConfig::default());
        assert!(result.codelength < result.initial_codelength);
        assert!(result.levels.len() >= 2, "expected multi-level coarsening");
        for w in result.levels.windows(2) {
            assert!(
                w[1].codelength_after <= w[0].codelength_after + 1e-9,
                "codelength increased across levels"
            );
        }
    }

    #[test]
    fn refinement_improves_or_matches_plain_multilevel() {
        let lfr = lfr_benchmark(
            &LfrConfig {
                n: 800,
                mu: 0.35,
                ..Default::default()
            },
            13,
        );
        let plain = detect_communities(
            &lfr.graph,
            &InfomapConfig {
                outer_loops: 1,
                ..Default::default()
            },
        );
        let refined = detect_communities(&lfr.graph, &InfomapConfig::default());
        assert!(refined.codelength <= plain.codelength + 1e-9);
    }

    #[test]
    fn directed_graph_supported() {
        // Two directed 3-cycles joined by weak links.
        let mut b = GraphBuilder::directed(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 10.0);
        }
        b.add_edge(2, 3, 0.1);
        b.add_edge(5, 0, 0.1);
        let result = detect_communities(&b.build(), &InfomapConfig::default());
        assert_eq!(result.num_communities(), 2);
        let p = &result.partition;
        assert_eq!(p.community_of(0), p.community_of(1));
        assert_eq!(p.community_of(3), p.community_of(4));
        assert_ne!(p.community_of(0), p.community_of(3));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = GraphBuilder::undirected(1).build();
        let result = detect_communities(&g, &InfomapConfig::default());
        assert_eq!(result.partition.len(), 1);

        let mut b = GraphBuilder::undirected(2);
        b.add_edge(0, 1, 1.0);
        let result = detect_communities(&b.build(), &InfomapConfig::default());
        assert!(result.num_communities() <= 2);
    }

    #[test]
    fn recorded_teleport_mode_end_to_end() {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 5,
                community_size: 40,
                k_in: 12.0,
                k_out: 1.0,
            },
            17,
        );
        let cfg = InfomapConfig {
            recorded_teleport: true,
            ..Default::default()
        };
        let result = detect_communities(&g, &cfg);
        assert_eq!(result.num_communities(), truth.num_communities());
        assert!(result.codelength < result.initial_codelength);
        // Encoding teleport steps costs bits: recorded codelength exceeds
        // the unrecorded one for the same structure.
        let unrec = detect_communities(&g, &InfomapConfig::default());
        assert!(result.codelength > unrec.codelength);
    }

    #[test]
    fn timings_populated() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 4,
                community_size: 50,
                k_in: 10.0,
                k_out: 1.0,
            },
            3,
        );
        let result = detect_communities(&g, &InfomapConfig::default());
        assert!(result.timings.find_best.as_nanos() > 0);
        assert!(result.timings.total().as_nanos() > 0);
        let level0 = &result.levels[0];
        assert_eq!(level0.sweep_seconds.len(), level0.sweeps);
        // Active set must shrink across level-0 sweeps.
        if level0.sweep_active.len() >= 2 {
            assert!(level0.sweep_active.last().unwrap() <= &level0.sweep_active[0]);
        }
    }
}
