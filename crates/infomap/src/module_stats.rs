//! Per-community flow statistics of a final partition.
//!
//! Beyond the scalar codelength, downstream users (and the CLI) want to
//! know what each detected community looks like in flow terms: how much of
//! the random walker's time it captures, how leaky its boundary is, and
//! what it costs in the map equation's module codebooks.

use asa_graph::Partition;
use serde::{Deserialize, Serialize};

use crate::flow::FlowNetwork;
use crate::mapeq::{plogp, MapState};

/// Flow summary of one module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleStat {
    /// Module label.
    pub module: u32,
    /// Member count (original vertices).
    pub size: u64,
    /// Total visit rate `p_i` — the fraction of the walker's time spent in
    /// this module.
    pub flow: f64,
    /// Exit probability `q_i`.
    pub exit: f64,
    /// Boundary leakiness: `q_i / (q_i + p_i)`, the probability that a
    /// codeword used inside this module's codebook is the exit word.
    pub leakage: f64,
    /// This module's contribution to the codelength's module terms, in
    /// bits: `plogp(q_i + p_i) − 2·plogp(q_i)`.
    pub module_bits: f64,
}

/// Computes per-module statistics for `partition` over `flow`, sorted by
/// decreasing flow.
pub fn module_statistics(flow: &FlowNetwork, partition: &Partition) -> Vec<ModuleStat> {
    let state = MapState::new(flow, partition);
    let mut sizes = vec![0u64; partition.num_communities()];
    for u in 0..flow.num_nodes() as u32 {
        sizes[partition.community_of(u) as usize] += flow.node_weight(u);
    }
    let mut stats: Vec<ModuleStat> = (0..partition.num_communities() as u32)
        .map(|m| {
            let q = state.exit(m);
            let p = state.flow(m);
            ModuleStat {
                module: m,
                size: sizes[m as usize],
                flow: p,
                exit: q,
                leakage: if q + p > 0.0 { q / (q + p) } else { 0.0 },
                module_bits: plogp(q + p) - 2.0 * plogp(q),
            }
        })
        .collect();
    stats.sort_by(|a, b| {
        b.flow
            .partial_cmp(&a.flow)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use asa_graph::GraphBuilder;

    fn two_triangles_flow() -> FlowNetwork {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        FlowNetwork::from_graph(&b.build(), &InfomapConfig::default())
    }

    #[test]
    fn stats_of_symmetric_split() {
        let flow = two_triangles_flow();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let stats = module_statistics(&flow, &p);
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.size, 3);
            assert!((s.flow - 0.5).abs() < 1e-12);
            assert!((s.exit - 1.0 / 14.0).abs() < 1e-12);
            assert!(s.leakage > 0.0 && s.leakage < 0.2);
            assert!(s.module_bits.is_finite());
        }
        // Flows cover the full walk.
        let total: f64 = stats.iter().map(|s| s.flow).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_by_flow() {
        let flow = two_triangles_flow();
        // Asymmetric split: {0} vs rest.
        let p = Partition::from_labels(vec![0, 1, 1, 1, 1, 1]);
        let stats = module_statistics(&flow, &p);
        assert!(stats[0].flow >= stats[1].flow);
        assert_eq!(stats[0].size, 5);
    }

    #[test]
    fn isolated_module_never_leaks() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let p = Partition::from_labels(vec![0, 0, 1, 1]);
        for s in module_statistics(&flow, &p) {
            assert_eq!(s.exit, 0.0);
            assert_eq!(s.leakage, 0.0);
        }
    }
}
