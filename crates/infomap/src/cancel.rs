//! Cooperative cancellation for long-running optimization.
//!
//! A [`CancelToken`] is threaded into
//! [`crate::schedule::optimize_multilevel_cancellable`], which polls it once
//! per completed local-move sweep. When the token trips — by explicit
//! [`CancelToken::cancel`], by an expired deadline, or (for deterministic
//! tests) by an exhausted poll budget — the schedule stops at the next sweep
//! boundary, folds the best partition found so far into the answer, and
//! returns with `interrupted = true`. Cancellation never yields an invalid
//! partition: every vertex stays assigned and the reported codelength is the
//! codelength of the returned partition.
//!
//! The token is an `Option<Arc<_>>` like every other handle in this stack:
//! [`CancelToken::none`] is a `None` that makes each poll a single branch,
//! so uncancellable callers pay nothing.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Remaining sweep polls before the token trips on its own; `None`
    /// disables the budget. Used by tests to cancel after exactly k sweeps.
    poll_budget: Option<AtomicI64>,
}

/// Shared cancellation handle. Clones observe the same state; `cancel()`
/// on any clone stops every run polling the token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Option<Arc<CancelInner>>);

impl CancelToken {
    /// The never-cancelled token: every poll is one branch on `None`.
    pub fn none() -> Self {
        CancelToken(None)
    }

    /// A manually triggered token; trips when [`CancelToken::cancel`] runs.
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token that trips once `deadline` passes (and still honours manual
    /// [`CancelToken::cancel`]).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline), None)
    }

    /// [`CancelToken::with_deadline`] from a relative timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A token that trips on the `polls`-th sweep-boundary poll. The
    /// schedule polls once at the end of each completed sweep, so a run
    /// under `after_polls(k)` executes exactly `k` sweeps (when the
    /// uncancelled run would execute at least that many). Deterministic
    /// regardless of wall clock — the cancellation test harness uses this
    /// to truncate a run at a known sweep count.
    pub fn after_polls(polls: u64) -> Self {
        Self::build(None, Some(AtomicI64::new(polls as i64)))
    }

    fn build(deadline: Option<Instant>, poll_budget: Option<AtomicI64>) -> Self {
        CancelToken(Some(Arc::new(CancelInner {
            cancelled: AtomicBool::new(false),
            deadline,
            poll_budget,
        })))
    }

    /// Trips the token; every subsequent poll reports cancellation.
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether the token has tripped (flag or deadline), without consuming
    /// poll budget. Admission checks use this before starting work.
    pub fn is_cancelled(&self) -> bool {
        match &self.0 {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// One sweep-boundary poll: reports whether the run should stop, and
    /// consumes one unit of poll budget if a budget is set. Called by the
    /// schedule after each completed sweep.
    pub fn poll(&self) -> bool {
        let Some(inner) = &self.0 else {
            return false;
        };
        if inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if inner.deadline.is_some_and(|d| Instant::now() >= d) {
            return true;
        }
        if let Some(budget) = &inner.poll_budget {
            // fetch_sub returns the previous value: budget k trips on the
            // k-th poll, i.e. right after the k-th sweep completes.
            if budget.fetch_sub(1, Ordering::AcqRel) <= 1 {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_trips() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        for _ in 0..1000 {
            assert!(!t.poll());
        }
        t.cancel(); // no-op, must not panic
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_cancel_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.poll());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(c.poll());
    }

    #[test]
    fn deadline_trips() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.poll());
        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(!far.poll());
    }

    #[test]
    fn poll_budget_trips_on_exactly_the_kth_poll() {
        let t = CancelToken::after_polls(3);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(t.poll());
        assert!(t.poll());
        // is_cancelled does not consume budget.
        let u = CancelToken::after_polls(1);
        for _ in 0..10 {
            assert!(!u.is_cancelled());
        }
        assert!(u.poll());
    }
}
