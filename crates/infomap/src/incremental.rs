//! Incremental Infomap over dynamic graphs: frontier-restricted
//! re-optimization seeded from the previous partition.
//!
//! A fresh multilevel run costs the full pipeline for every edit batch.
//! [`IncrementalState`] instead keeps the last partition (plus its module
//! statistics and flow vectors) alive and, on an [`EdgeDelta`]:
//!
//! 1. **Flow rescale** — rebuilds the [`FlowNetwork`] on the merged
//!    graph. For undirected graphs node and arc flows are the analytic
//!    `w / 2W` values (any weight edit rescales *every* flow through the
//!    normalizer, so the honest "local rescale" is the O(m) closed form);
//!    directed graphs re-run PageRank.
//! 2. **Touched frontier** — the endpoints of changed arcs plus the
//!    boundary vertices of their modules (members with an arc crossing
//!    the module boundary) form the initial active set.
//! 3. **Frontier-restricted sweeps** — local-move sweeps run only over
//!    the active set, reusing the dual-SPA sweep kernel through
//!    [`HostEngine`] with a frontier vertex schedule. Each sweep the
//!    frontier *ripples*: [`next_active_into`] expands it to the
//!    neighbors of whatever moved, so changes propagate exactly as far
//!    as they improve the map equation.
//! 4. **Quality guard** — the incremental codelength is compared against
//!    the anchor (the codelength of the last full run) under a drift
//!    budget. Exceeding the budget — or a frontier that rippled across
//!    too much of the graph — triggers a full multilevel fallback, which
//!    also re-anchors the drift reference. Both paths poll the
//!    [`CancelToken`] at sweep boundaries.
//!
//! The incremental pass never coarsens, so it can only refine locally;
//! the drift budget is what bounds the slow quality erosion this could
//! otherwise accumulate across many batches. Telemetry:
//! `infomap.incr.frontier_size` / `infomap.incr.ripple_rounds` gauges
//! (plus flight-recorder instants) per batch and an
//! `infomap.incr.fallback` counter/instant when the guard fires.

use std::sync::Arc;
use std::time::Instant;

use asa_graph::delta::{DeltaGraph, EdgeDelta};
use asa_graph::{CsrGraph, NodeId, Partition};
use asa_obs::Obs;

use crate::cancel::CancelToken;
use crate::config::InfomapConfig;
use crate::driver::HostEngine;
use crate::flow::FlowNetwork;
use crate::local_move::{apply_decisions, next_active_into};
use crate::mapeq::{plogp, MapState};
use crate::result::{InfomapResult, KernelTimings, LevelInfo};
use crate::schedule::{optimize_multilevel_cancellable, DecideEngine, SweepCtx, REFINE_LEVEL};

/// Knobs of the incremental path's quality guard.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Maximum tolerated relative codelength regression of an incremental
    /// pass against the anchor (the last full run): exceeding
    /// `anchor * (1 + drift_budget)` forces a full multilevel fallback.
    pub drift_budget: f64,
    /// Maximum fraction of vertices the rippling frontier may touch in
    /// one batch before the pass is declared non-local and falls back.
    pub frontier_budget: f64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            drift_budget: 0.01,
            frontier_budget: 0.5,
        }
    }
}

/// Why the quality guard replaced an incremental pass with a full run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Incremental codelength drifted past the anchor's budget.
    DriftExceeded,
    /// The frontier rippled across more than the budgeted fraction of
    /// the graph — a full run is no more expensive at that point.
    FrontierExploded,
}

impl FallbackReason {
    /// Stable lowercase name for telemetry and reports.
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::DriftExceeded => "drift_exceeded",
            FallbackReason::FrontierExploded => "frontier_exploded",
        }
    }
}

/// Outcome of one [`IncrementalState::apply`] call.
#[derive(Debug, Clone)]
pub struct IncrementalOutcome {
    /// The run's result on the merged graph. For an incremental pass the
    /// level statistics carry one frontier-restricted refinement entry;
    /// for a fallback they are the full multilevel breakdown.
    pub result: InfomapResult,
    /// `None` when the frontier-restricted pass was accepted; the
    /// guard's reason when a full multilevel run replaced it.
    pub fallback: Option<FallbackReason>,
    /// Initial frontier size (delta endpoints plus touched-module
    /// boundary vertices).
    pub frontier_size: usize,
    /// Sweeps the incremental pass executed before converging (frontier
    /// ripple rounds). Counts the attempted pass even when the guard
    /// then fell back.
    pub ripple_rounds: usize,
    /// Chain fingerprint identifying the produced graph version.
    pub chain_fingerprint: u64,
}

impl IncrementalOutcome {
    /// Whether the frontier-restricted pass was accepted.
    pub fn incremental(&self) -> bool {
        self.fallback.is_none()
    }
}

/// Live state of one dynamic graph: the delta overlay, the current
/// partition, and the quality-guard anchor. See the module docs.
#[derive(Debug)]
pub struct IncrementalState {
    graph: DeltaGraph,
    /// Materialized merged CSR of the current version (what the flow
    /// network and any fallback run are built from).
    merged: Arc<CsrGraph>,
    partition: Partition,
    codelength: f64,
    /// Codelength of the last *full* run — the drift reference.
    anchor_codelength: f64,
    cfg: InfomapConfig,
    icfg: IncrementalConfig,
}

impl IncrementalState {
    /// Seeds the state with a full (cancellable) run on `base`. Returns
    /// the state plus that run's result.
    pub fn new(
        base: Arc<CsrGraph>,
        cfg: InfomapConfig,
        icfg: IncrementalConfig,
        obs: &Obs,
        cancel: &CancelToken,
    ) -> (Self, InfomapResult) {
        let result = crate::detect_communities_cancellable(&base, &cfg, obs, cancel);
        let state = IncrementalState {
            graph: DeltaGraph::new(Arc::clone(&base)),
            merged: base,
            partition: result.partition.clone(),
            codelength: result.codelength,
            anchor_codelength: result.codelength,
            cfg,
            icfg,
        };
        (state, result)
    }

    /// The delta overlay (base + net patches).
    pub fn graph(&self) -> &DeltaGraph {
        &self.graph
    }

    /// The materialized merged graph of the current version.
    pub fn merged(&self) -> &Arc<CsrGraph> {
        &self.merged
    }

    /// Current vertex→module assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Codelength of [`IncrementalState::partition`] on the current
    /// version, in bits.
    pub fn codelength(&self) -> f64 {
        self.codelength
    }

    /// The quality guard's drift reference (codelength of the last full
    /// run).
    pub fn anchor_codelength(&self) -> f64 {
        self.anchor_codelength
    }

    /// The Infomap configuration this state optimizes under.
    pub fn config(&self) -> &InfomapConfig {
        &self.cfg
    }

    /// Chain fingerprint of the current version.
    pub fn chain_fingerprint(&self) -> u64 {
        self.graph.chain_fingerprint()
    }

    /// The chain head `apply(delta)` would produce.
    pub fn fingerprint_after(&self, delta: &EdgeDelta) -> u64 {
        self.graph.fingerprint_after(delta)
    }

    /// Folds the overlay into a fresh base CSR. Chain identity — and
    /// therefore every cache entry keyed on it — is preserved.
    pub fn compact(&mut self) {
        let head = self.graph.chain_fingerprint();
        self.merged = self.graph.compact();
        debug_assert_eq!(self.graph.chain_fingerprint(), head);
    }

    /// Applies one delta batch and re-optimizes. An empty delta is a
    /// strict no-op returning the identical partition. See the module
    /// docs for the algorithm and the quality-guard contract.
    pub fn apply(
        &mut self,
        delta: &EdgeDelta,
        obs: &Obs,
        cancel: &CancelToken,
    ) -> IncrementalOutcome {
        let _run = obs.span("infomap.incr");
        if delta.is_empty() {
            return IncrementalOutcome {
                result: self.snapshot_result(self.codelength, Vec::new(), KernelTimings::default()),
                fallback: None,
                frontier_size: 0,
                ripple_rounds: 0,
                chain_fingerprint: self.graph.chain_fingerprint(),
            };
        }
        let chain = self.graph.apply(delta);
        let t = Instant::now();
        let flow = {
            let _sp = obs.span("incr.flow");
            self.merged = Arc::new(self.graph.materialize());
            FlowNetwork::from_graph(&self.merged, &self.cfg)
        };
        let mut timings = KernelTimings {
            pagerank: t.elapsed(),
            ..KernelTimings::default()
        };

        let n = flow.num_nodes();
        let node_plogp0: f64 = flow.node_flows().iter().copied().map(plogp).sum();
        let mode = self.cfg.teleport_mode();
        self.partition.compact();
        let mut state = MapState::with_options(&flow, &self.partition, node_plogp0, mode);
        let seeded_codelength = state.codelength();

        // Touched frontier: endpoints of changed arcs plus the boundary
        // vertices of their modules.
        let mut active = initial_frontier(&flow, &self.partition, &delta.endpoints());
        let frontier_size = active.len();
        obs.gauge("infomap.incr.frontier_size")
            .set(frontier_size as u64);
        obs.trace_instant("infomap.incr.frontier_size", "infomap");

        // Frontier-restricted sweep loop (mirrors the schedule's sweep
        // body, minus coarsening) over the previous partition.
        let mut engine = HostEngine::with_obs(&self.cfg, obs);
        let mut labels: Vec<u32> = Vec::new();
        let mut mark: Vec<bool> = Vec::new();
        let mut next: Vec<NodeId> = Vec::new();
        let mut touched = vec![false; n];
        let mut touched_total = 0usize;
        let mut interrupted = false;
        let mut info = LevelInfo {
            nodes: n,
            sweeps: 0,
            moves: 0,
            codelength_before: seeded_codelength,
            codelength_after: seeded_codelength,
            sweep_seconds: Vec::new(),
            sweep_active: Vec::new(),
            refinement: true,
        };
        for sweep in 0..self.cfg.max_sweeps {
            if active.is_empty() {
                break;
            }
            for &u in &active {
                if !touched[u as usize] {
                    touched[u as usize] = true;
                    touched_total += 1;
                }
            }
            let _sweep_sp = obs.span("sweep");
            let t = Instant::now();
            labels.clear();
            labels.extend_from_slice(self.partition.labels());
            let decisions = engine.decide(&SweepCtx {
                flow: &flow,
                labels: &labels,
                state: &state,
                active: &active,
                outer: 0,
                level: REFINE_LEVEL,
                sweep,
            });
            let applied = apply_decisions(
                &flow,
                &mut self.partition,
                &mut state,
                &decisions,
                self.cfg.min_improvement,
            );
            let dt = t.elapsed();
            timings.find_best += dt;
            info.sweeps += 1;
            info.moves += applied.applied;
            info.sweep_seconds.push(dt.as_secs_f64());
            info.sweep_active.push(active.len());
            if cancel.poll() {
                interrupted = true;
                obs.trace_instant("infomap.cancelled", "infomap");
                break;
            }
            if applied.applied == 0 {
                break;
            }
            next_active_into(&flow, &applied.moved, &mut mark, &mut next);
            std::mem::swap(&mut active, &mut next);
        }
        let ripple_rounds = info.sweeps;
        obs.gauge("infomap.incr.ripple_rounds")
            .set(ripple_rounds as u64);
        obs.trace_instant("infomap.incr.ripple_rounds", "infomap");

        let incremental_codelength = state.codelength();
        info.codelength_after = incremental_codelength;

        // Quality guard. A cancelled pass skips it: the fallback would be
        // cancelled immediately too, so the partial incremental answer is
        // the best available within the budget.
        let anchor = self.anchor_codelength;
        let drift_limit = anchor + self.icfg.drift_budget * anchor.abs();
        let fallback = if interrupted {
            None
        } else if incremental_codelength > drift_limit {
            Some(FallbackReason::DriftExceeded)
        } else if (touched_total as f64) > self.icfg.frontier_budget * n as f64 {
            Some(FallbackReason::FrontierExploded)
        } else {
            None
        };

        let result = match fallback {
            None => {
                self.partition.compact();
                self.codelength = incremental_codelength;
                self.snapshot_result(incremental_codelength, vec![info], timings)
            }
            Some(reason) => {
                obs.counter("infomap.incr.fallback").incr();
                obs.trace_instant("infomap.incr.fallback", "infomap");
                let _sp = obs.span("incr.fallback");
                let mut full_engine = HostEngine::with_obs(&self.cfg, obs);
                let outcome =
                    optimize_multilevel_cancellable(&flow, &self.cfg, &mut full_engine, cancel);
                let mut full_timings = outcome.timings;
                full_timings.pagerank = timings.pagerank;
                self.partition = outcome.partition.clone();
                self.codelength = outcome.codelength;
                // Re-anchor: the full run is the new drift reference.
                self.anchor_codelength = outcome.codelength;
                let _ = reason;
                InfomapResult {
                    partition: outcome.partition,
                    codelength: outcome.codelength,
                    initial_codelength: outcome.initial_codelength,
                    levels: outcome.levels,
                    level_partitions: outcome.level_partitions,
                    timings: full_timings,
                    interrupted: outcome.interrupted,
                }
            }
        };
        let interrupted = interrupted || result.interrupted;
        IncrementalOutcome {
            result: InfomapResult {
                interrupted,
                ..result
            },
            fallback,
            frontier_size,
            ripple_rounds,
            chain_fingerprint: chain,
        }
    }

    /// An [`InfomapResult`] describing the current partition with the
    /// given level breakdown.
    fn snapshot_result(
        &self,
        codelength: f64,
        levels: Vec<LevelInfo>,
        timings: KernelTimings,
    ) -> InfomapResult {
        let initial_codelength = levels.first().map_or(codelength, |l| l.codelength_before);
        InfomapResult {
            partition: self.partition.clone(),
            codelength,
            initial_codelength,
            levels,
            level_partitions: vec![self.partition.clone()],
            timings,
            interrupted: false,
        }
    }
}

/// The touched frontier: `endpoints` plus every boundary vertex (one
/// with an arc crossing the module boundary, in either direction) of the
/// modules those endpoints live in. Sorted, deduplicated.
fn initial_frontier(
    flow: &FlowNetwork,
    partition: &Partition,
    endpoints: &[NodeId],
) -> Vec<NodeId> {
    let labels = partition.labels();
    let modules = partition.num_communities();
    let mut touched_module = vec![false; modules];
    for &e in endpoints {
        touched_module[labels[e as usize] as usize] = true;
    }
    let mut frontier: Vec<NodeId> = endpoints.to_vec();
    for u in 0..flow.num_nodes() as NodeId {
        let m = labels[u as usize];
        if !touched_module[m as usize] {
            continue;
        }
        let crosses = flow.out_arcs(u).any(|(v, _)| labels[v as usize] != m)
            || flow.in_arcs(u).any(|(v, _)| labels[v as usize] != m);
        if crosses {
            frontier.push(u);
        }
    }
    frontier.sort_unstable();
    frontier.dedup();
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::GraphBuilder;

    fn planted() -> Arc<CsrGraph> {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 40,
                k_in: 10.0,
                k_out: 1.0,
            },
            19,
        );
        Arc::new(g)
    }

    fn seed(base: Arc<CsrGraph>) -> IncrementalState {
        IncrementalState::new(
            base,
            InfomapConfig::default(),
            IncrementalConfig::default(),
            &Obs::disabled(),
            &CancelToken::none(),
        )
        .0
    }

    #[test]
    fn empty_delta_is_identity() {
        let mut st = seed(planted());
        let before_labels = st.partition().labels().to_vec();
        let before_head = st.chain_fingerprint();
        let out = st.apply(&EdgeDelta::new(), &Obs::disabled(), &CancelToken::none());
        assert!(out.incremental());
        assert_eq!(out.frontier_size, 0);
        assert_eq!(out.ripple_rounds, 0);
        assert_eq!(out.chain_fingerprint, before_head);
        assert_eq!(out.result.partition.labels(), &before_labels[..]);
        assert_eq!(st.partition().labels(), &before_labels[..]);
    }

    #[test]
    fn small_delta_stays_incremental_and_tracks_quality() {
        let base = planted();
        let mut st = seed(Arc::clone(&base));
        // Strengthen a handful of intra-community edges: local work only.
        let mut d = EdgeDelta::new();
        d.insert(0, 1, 0.5).insert(2, 3, 0.5).insert(40, 41, 0.5);
        let out = st.apply(&d, &Obs::disabled(), &CancelToken::none());
        assert!(out.incremental(), "local edit must not trigger fallback");
        assert!(out.frontier_size > 0);
        assert!(out.ripple_rounds >= 1);
        // Quality: within the drift budget of a fresh run on the merged
        // graph.
        let fresh = crate::detect_communities(st.merged(), st.config());
        let budget = st.icfg.drift_budget;
        assert!(
            st.codelength() <= fresh.codelength * (1.0 + budget) + 1e-9,
            "incremental {} vs fresh {}",
            st.codelength(),
            fresh.codelength
        );
    }

    #[test]
    fn destructive_delta_falls_back_and_reanchors() {
        // A chain of tiny cliques; the delta rewires it into one dense
        // blob, invalidating the old partition globally.
        let mut b = GraphBuilder::undirected(24);
        for c in 0..6u32 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(base + i, base + j, 8.0);
                }
            }
            b.add_edge(base, ((c + 1) % 6) * 4, 0.1);
        }
        let mut st = seed(Arc::new(b.build()));
        let mut d = EdgeDelta::new();
        for u in 0..24u32 {
            for v in (u + 1)..24 {
                if st.graph().arc_weight(u, v).is_none() {
                    d.insert(u, v, 6.0);
                }
            }
        }
        let out = st.apply(&d, &Obs::disabled(), &CancelToken::none());
        assert!(out.fallback.is_some(), "global rewire must fall back");
        // Fallback re-anchors the drift reference to its own codelength.
        assert_eq!(st.anchor_codelength(), st.codelength());
        // The fallback is bit-identical to a fresh run on the merged
        // graph (same flow, same deterministic schedule).
        let fresh = crate::detect_communities(st.merged(), st.config());
        assert_eq!(st.codelength().to_bits(), fresh.codelength.to_bits());
        assert_eq!(st.partition().labels(), fresh.partition.labels());
    }

    #[test]
    fn cancelled_apply_returns_valid_partial_state() {
        let base = planted();
        let mut st = seed(Arc::clone(&base));
        let mut d = EdgeDelta::new();
        for u in 0..60u32 {
            d.insert(u, (u + 97) % 240, 2.0);
        }
        let cancel = CancelToken::after_polls(1);
        let out = st.apply(&d, &Obs::disabled(), &cancel);
        assert!(out.result.interrupted);
        assert!(out.result.codelength.is_finite());
        assert_eq!(out.result.partition.len(), base.num_nodes());
        // State stays coherent for the next batch.
        assert_eq!(st.partition().len(), base.num_nodes());
    }

    #[test]
    fn compaction_preserves_chain_and_partition() {
        let mut st = seed(planted());
        let mut d = EdgeDelta::new();
        d.insert(5, 9, 1.0).delete(0, 1);
        let out = st.apply(&d, &Obs::disabled(), &CancelToken::none());
        let head = out.chain_fingerprint;
        let labels = st.partition().labels().to_vec();
        let merged_fp = st.merged().fingerprint();
        st.compact();
        assert_eq!(st.chain_fingerprint(), head);
        assert_eq!(st.partition().labels(), &labels[..]);
        assert_eq!(st.merged().fingerprint(), merged_fp);
    }
}
