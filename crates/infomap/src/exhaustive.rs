//! Exhaustive map-equation minimization for tiny networks.
//!
//! Enumerates every set partition of the vertex set (Bell(n) candidates —
//! feasible to n ≈ 10) and returns the codelength-optimal one. This is the
//! ground-truth oracle the test suite uses to certify that the greedy
//! multi-level optimizer reaches (or nearly reaches) the true optimum on
//! small instances, the strongest correctness evidence available for an
//! NP-complete objective ("computing Huffman coding for each of those
//! combinations and then finding the most compressed one is an
//! NP-complete problem", paper Section II-B).

use asa_graph::Partition;

use crate::flow::FlowNetwork;
use crate::mapeq::{codelength, MapState, TeleportMode};

/// The optimal partition and its codelength.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// The codelength-minimal partition.
    pub partition: Partition,
    /// Its codelength in bits.
    pub codelength: f64,
    /// Number of partitions evaluated (the Bell number of `n`).
    pub evaluated: u64,
}

/// Finds the codelength-optimal partition of `flow` by brute force.
///
/// # Panics
/// Panics for networks with more than `max_nodes` vertices (default guard
/// 12; Bell(12) ≈ 4.2M evaluations).
pub fn exhaustive_best_partition(flow: &FlowNetwork, max_nodes: usize) -> ExhaustiveResult {
    let n = flow.num_nodes();
    assert!(
        n <= max_nodes && n <= 14,
        "exhaustive search is only feasible for tiny networks (n = {n})"
    );
    if n == 0 {
        return ExhaustiveResult {
            partition: Partition::from_labels(Vec::new()),
            codelength: 0.0,
            evaluated: 0,
        };
    }

    // Enumerate set partitions in restricted-growth-string order: label[i]
    // may be at most 1 + max(label[0..i]).
    let mut labels = vec![0u32; n];
    let mut best_labels = labels.clone();
    let mut best = f64::INFINITY;
    let mut evaluated = 0u64;

    loop {
        evaluated += 1;
        let candidate = Partition::from_labels(labels.clone());
        let l = codelength(flow, &candidate);
        if l < best - 1e-15 {
            best = l;
            best_labels = labels.clone();
        }

        // Advance the restricted growth string.
        let mut i = n;
        loop {
            if i == 1 {
                return ExhaustiveResult {
                    partition: Partition::from_labels(best_labels),
                    codelength: best,
                    evaluated,
                };
            }
            i -= 1;
            let max_prefix = labels[..i].iter().copied().max().unwrap_or(0);
            if labels[i] <= max_prefix {
                labels[i] += 1;
                for l in labels[i + 1..].iter_mut() {
                    *l = 0;
                }
                break;
            }
            labels[i] = 0;
        }
    }
}

/// Like [`exhaustive_best_partition`] but scoring under an explicit
/// teleport mode.
pub fn exhaustive_best_with_mode(
    flow: &FlowNetwork,
    max_nodes: usize,
    mode: TeleportMode,
) -> ExhaustiveResult {
    let n = flow.num_nodes();
    assert!(
        n <= max_nodes && n <= 14,
        "network too large for brute force"
    );
    let node_plogp: f64 = flow
        .node_flows()
        .iter()
        .copied()
        .map(crate::mapeq::plogp)
        .sum();
    let mut labels = vec![0u32; n];
    let mut best_labels = labels.clone();
    let mut best = f64::INFINITY;
    let mut evaluated = 0u64;
    loop {
        evaluated += 1;
        let candidate = Partition::from_labels(labels.clone());
        let l = MapState::with_options(flow, &candidate, node_plogp, mode).codelength();
        if l < best - 1e-15 {
            best = l;
            best_labels = labels.clone();
        }
        let mut i = n;
        loop {
            if i == 1 {
                return ExhaustiveResult {
                    partition: Partition::from_labels(best_labels),
                    codelength: best,
                    evaluated,
                };
            }
            i -= 1;
            let max_prefix = labels[..i].iter().copied().max().unwrap_or(0);
            if labels[i] <= max_prefix {
                labels[i] += 1;
                for l in labels[i + 1..].iter_mut() {
                    *l = 0;
                }
                break;
            }
            labels[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InfomapConfig;
    use crate::driver::detect_communities;
    use asa_graph::GraphBuilder;

    fn bell(n: usize) -> u64 {
        // Bell numbers via the Bell triangle: B(n) is the last element of
        // the n-th row (B(1)=1, B(2)=2, B(3)=5, ...).
        let mut row = vec![1u64];
        for _ in 1..n {
            let mut next = vec![*row.last().unwrap()];
            for &x in &row {
                let last = *next.last().unwrap();
                next.push(last + x);
            }
            row = next;
        }
        *row.last().unwrap()
    }

    #[test]
    fn enumerates_bell_many_partitions() {
        for n in 1..=6 {
            let mut b = GraphBuilder::undirected(n);
            if n >= 2 {
                b.add_edge(0, 1, 1.0);
            }
            let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
            let result = exhaustive_best_partition(&flow, 8);
            assert_eq!(result.evaluated, bell(n), "Bell({n})");
        }
    }

    #[test]
    fn optimum_on_two_triangles() {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let g = b.build();
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        let opt = exhaustive_best_partition(&flow, 8);
        // The optimum is the two triangles.
        assert_eq!(opt.partition.num_communities(), 2);
        assert_eq!(opt.partition.community_of(0), opt.partition.community_of(2));
        assert_ne!(opt.partition.community_of(0), opt.partition.community_of(3));

        // The greedy multi-level optimizer reaches the true optimum here.
        let greedy = detect_communities(&g, &InfomapConfig::default());
        assert!(
            (greedy.codelength - opt.codelength).abs() < 1e-9,
            "greedy {} vs optimal {}",
            greedy.codelength,
            opt.codelength
        );
    }

    #[test]
    fn greedy_within_tolerance_on_random_tiny_graphs() {
        // Deterministic pseudo-random tiny graphs: the greedy result's
        // codelength must be within 2% of the brute-force optimum.
        let mut x = 42u64;
        for trial in 0..8 {
            let n = 6 + (trial % 3);
            let mut b = GraphBuilder::undirected(n);
            let mut added = 0;
            while added < n + 3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((x >> 33) % n as u64) as u32;
                let v = ((x >> 13) % n as u64) as u32;
                if u != v {
                    b.add_edge(u, v, 1.0 + (x % 3) as f64);
                    added += 1;
                }
            }
            let g = b.build();
            let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
            let opt = exhaustive_best_partition(&flow, 10);
            let greedy = detect_communities(&g, &InfomapConfig::default());
            assert!(
                greedy.codelength <= opt.codelength * 1.02 + 1e-9,
                "trial {trial}: greedy {} vs optimal {}",
                greedy.codelength,
                opt.codelength
            );
        }
    }

    #[test]
    fn recorded_mode_optimum_differs() {
        let mut b = GraphBuilder::undirected(5);
        for &(u, v) in &[(0, 1), (1, 2), (3, 4)] {
            b.add_edge(u, v, 1.0);
        }
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let unrec = exhaustive_best_with_mode(&flow, 8, TeleportMode::Unrecorded);
        let rec = exhaustive_best_with_mode(&flow, 8, TeleportMode::Recorded { tau: 0.15 });
        assert!(rec.codelength > unrec.codelength);
        assert_eq!(unrec.evaluated, rec.evaluated);
    }
}
