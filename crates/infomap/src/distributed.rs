//! Distributed-memory emulation of the vertex-level phase.
//!
//! HyPC-Map (the paper's substrate) is a *hybrid* parallel Infomap:
//! shared-memory threads within a node and distributed ranks across nodes
//! (Faysal et al. 2021; the distributed design follows Faysal &
//! Arifuzzaman 2019). This module emulates the distributed layer on one
//! machine with real message passing over channels, so the harness can
//! report the communication volumes a cluster run would incur:
//!
//! * vertices are block-partitioned across `ranks`; each rank owns its
//!   labels and keeps *ghost* copies of remote neighbours' labels,
//! * a superstep = every rank decides moves for its vertices against its
//!   current (possibly stale) ghosts, then applies its accepted moves and
//!   sends `(vertex, new_label)` updates to every rank that borders the
//!   moved vertex,
//! * module statistics are refreshed by an emulated all-reduce whose byte
//!   volume is counted.
//!
//! Decisions within a superstep use frozen state (exactly like the
//! shared-memory phase), and conflicting moves are re-validated against
//! the refreshed global state at the start of the next superstep, so the
//! codelength is monotone and the final partition matches the
//! shared-memory optimizer's fixed points.

use std::cell::Cell;
use std::time::{Duration, Instant};

use asa_graph::{CsrGraph, NodeId, Partition};
use asa_obs::{Counter, Gauge, Obs, Value};
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

use crate::cancel::CancelToken;
use crate::config::InfomapConfig;
use crate::find_best::{find_best_community, FindBestScratch, MoveDecision};
use crate::flow::FlowNetwork;
use crate::local_move::{apply_decisions, decide_range, AppliedMoves, FastAccumulator};
use crate::mapeq::{plogp, MapState};
use crate::result::InfomapResult;
use crate::schedule::{optimize_multilevel_cancellable, DecideEngine, SweepCtx};

/// Communication statistics of a distributed run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CommStats {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Point-to-point label-update messages sent.
    pub messages: u64,
    /// Bytes in label-update messages (8 bytes per update).
    pub update_bytes: u64,
    /// Bytes moved by the per-superstep module-statistics all-reduce.
    pub allreduce_bytes: u64,
    /// Cut arcs (arcs crossing rank boundaries) — the static upper bound
    /// on per-superstep communication.
    pub cut_arcs: u64,
}

impl CommStats {
    /// Accumulates another run's (or level's) accounting into this one.
    pub fn absorb(&mut self, other: &CommStats) {
        self.supersteps += other.supersteps;
        self.messages += other.messages;
        self.update_bytes += other.update_bytes;
        self.allreduce_bytes += other.allreduce_bytes;
        self.cut_arcs += other.cut_arcs;
    }
}

/// Result of the distributed vertex-level optimization.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// Final label per vertex.
    pub partition: Partition,
    /// Final codelength (vertex level only; no coarsening here).
    pub codelength: f64,
    /// Moves applied in total.
    pub moves: usize,
    /// Communication accounting.
    pub comm: CommStats,
    /// Whether a [`CancelToken`] stopped the run at a superstep boundary.
    pub interrupted: bool,
}

/// One rank's view: owned range plus ghost labels for remote neighbours.
struct Rank {
    range: std::ops::Range<usize>,
    /// Full label vector; entries outside `range` are ghosts.
    labels: Vec<u32>,
    /// Ranks neighbouring each owned vertex (deduplicated), for routing
    /// updates.
    subscribers: Vec<Vec<usize>>,
}

fn owner_of(ranges: &[std::ops::Range<usize>], v: usize) -> usize {
    ranges
        .iter()
        .position(|r| r.contains(&v))
        .expect("vertex outside all ranges")
}

/// Runs the distributed vertex-level phase on `flow` with `ranks` emulated
/// processes, up to `cfg.max_sweeps` supersteps.
pub fn distributed_local_moves(
    flow: &FlowNetwork,
    cfg: &InfomapConfig,
    ranks: usize,
) -> DistributedResult {
    distributed_local_moves_cancellable(flow, cfg, ranks, &CancelToken::none())
}

/// [`distributed_local_moves`] with cooperative cancellation: `cancel` is
/// polled once per completed superstep (the distributed analogue of the
/// shared-memory sweep boundary). A tripped token stops the run there;
/// the partition is complete and the codelength describes it exactly,
/// with [`DistributedResult::interrupted`] set.
pub fn distributed_local_moves_cancellable(
    flow: &FlowNetwork,
    cfg: &InfomapConfig,
    ranks: usize,
    cancel: &CancelToken,
) -> DistributedResult {
    assert!(ranks >= 1);
    let n = flow.num_nodes();
    let ranges = asa_simarch::machine::block_partition(n, ranks);

    // Static routing: which ranks need to hear about each vertex's moves.
    let mut cut_arcs = 0u64;
    let mut rank_views: Vec<Rank> = ranges
        .iter()
        .cloned()
        .map(|range| Rank {
            subscribers: vec![Vec::new(); range.len()],
            range,
            labels: (0..n as u32).collect(),
        })
        .collect();
    for (ri, range) in ranges.iter().enumerate() {
        for v in range.clone() {
            let mut subs: Vec<usize> = flow
                .out_arcs(v as u32)
                .chain(flow.in_arcs(v as u32))
                .map(|(t, _)| owner_of(&ranges, t as usize))
                .filter(|&o| o != ri)
                .collect();
            subs.sort_unstable();
            subs.dedup();
            cut_arcs += flow
                .out_arcs(v as u32)
                .filter(|&(t, _)| owner_of(&ranges, t as usize) != ri)
                .count() as u64;
            rank_views[ri].subscribers[v - range.start] = subs;
        }
    }

    // Channels: one inbox per rank. An update message is `(vertex, label)`.
    type Update = (u32, u32);
    let channels: Vec<(Sender<Update>, Receiver<Update>)> =
        (0..ranks).map(|_| unbounded()).collect();
    let senders: Vec<Sender<Update>> = channels.iter().map(|(s, _)| s.clone()).collect();

    // Coordinator state (emulates the all-reduced module statistics).
    let node_plogp0: f64 = flow.node_flows().iter().copied().map(plogp).sum();
    let mut partition = Partition::singletons(n);
    let mut state = MapState::with_options(flow, &partition, node_plogp0, cfg.teleport_mode());
    let mut comm = CommStats {
        cut_arcs,
        ..Default::default()
    };
    let mut total_moves = 0usize;
    let mut interrupted = false;
    // Bytes of one all-reduce: every rank contributes (exit, flow) per
    // module; we count one gather + broadcast of the module table.
    let allreduce_bytes_per_step = (state.num_modules() * 16 * 2 * ranks) as u64;

    for _superstep in 0..cfg.max_sweeps {
        comm.supersteps += 1;
        comm.allreduce_bytes += allreduce_bytes_per_step;

        // --- Parallel decision phase: real threads, one per rank.
        let decisions: Vec<Vec<MoveDecision>> = crossbeam::thread::scope(|scope| {
            let state_ref = &state;
            let handles: Vec<_> = rank_views
                .iter()
                .map(|rank| {
                    scope.spawn(move |_| {
                        let mut acc = FastAccumulator::default();
                        let mut scratch = FindBestScratch::default();
                        let mut sink = asa_simarch::events::NullSink;
                        let mut out = Vec::new();
                        for v in rank.range.clone() {
                            let d = find_best_community(
                                flow,
                                &rank.labels,
                                state_ref,
                                v as NodeId,
                                &mut acc,
                                &mut sink,
                                &mut scratch,
                            );
                            if d.best_module != rank.labels[v] {
                                out.push(d);
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("rank threads");

        // --- Apply at the coordinator (deterministic order), as the
        // owner-side resolution of conflicting moves.
        let mut all: Vec<MoveDecision> = decisions.into_iter().flatten().collect();
        all.sort_unstable_by_key(|d| d.vertex);
        let applied = apply_decisions(flow, &mut partition, &mut state, &all, cfg.min_improvement);
        total_moves += applied.applied;

        // --- Exchange: each moved vertex's new label goes to every
        // subscribing rank through its channel.
        for &v in &applied.moved {
            let ri = owner_of(&ranges, v as usize);
            let new_label = partition.community_of(v);
            let local = v as usize - ranges[ri].start;
            for &sub in &rank_views[ri].subscribers[local] {
                senders[sub].send((v, new_label)).expect("send");
                comm.messages += 1;
                comm.update_bytes += 8;
            }
        }
        // Owners update their own copy; ranks drain their inboxes.
        for (ri, rank) in rank_views.iter_mut().enumerate() {
            for v in rank.range.clone() {
                rank.labels[v] = partition.community_of(v as u32);
            }
            while let Ok((v, l)) = channels[ri].1.try_recv() {
                rank.labels[v as usize] = l;
            }
        }

        if applied.applied == 0 {
            break;
        }
        if cancel.poll() {
            interrupted = true;
            break;
        }
    }

    DistributedResult {
        codelength: state.codelength(),
        partition,
        moves: total_moves,
        comm,
        interrupted,
    }
}

/// The distributed decision engine, promoted from a standalone prototype
/// into a [`DecideEngine`] the multilevel schedule — and therefore a
/// serving-engine shard — can run as its internal parallel phase.
///
/// Each sweep block-partitions the level's vertices across `ranks`
/// emulated processes (real threads); every rank decides moves for its
/// owned slice of the active set against the sweep's frozen labels —
/// exactly the ghost state a cluster rank would hold after the previous
/// superstep's exchange. Because decisions are per-vertex functions of
/// frozen state and the schedule applies them in vertex order, the
/// decision stream — and so the partition and codelength — is
/// **bit-identical** to [`crate::HostEngine`]'s hash path (and therefore
/// to the SPA and SIMD kernels, which are proven identical to it).
///
/// What the promotion adds is *accounting*: the communication a real
/// cluster would incur — label-update messages to subscribing ranks, the
/// per-superstep module-statistics all-reduce, and cut arcs per level
/// layout — accumulates in a [`CommStats`] and streams through `obs`
/// counters (`infomap.dist.*`), so a serving layer can export per-request
/// communication cost next to its routing/steal counters.
pub struct DistEngine {
    ranks: usize,
    obs: Obs,
    comm: CommStats,
    /// Node count the cached rank layout was built for (`usize::MAX`
    /// before the first sweep). Levels re-partition lazily: refinement
    /// passes return to the vertex-level node count and reuse its layout.
    layout_nodes: usize,
    ranges: Vec<std::ops::Range<usize>>,
    /// `(messages, update_bytes)` at the previous sweep record, so
    /// convergence records carry per-sweep deltas.
    seen: Cell<(u64, u64)>,
    c_messages: Counter,
    c_update_bytes: Counter,
    c_allreduce_bytes: Counter,
    c_supersteps: Counter,
    c_cut_arcs: Counter,
    /// Per-superstep allreduce volume as a level (the cumulative counter
    /// above only yields a rate): the continuous-telemetry collector turns
    /// this into a time-series that tracks module-count collapse across a
    /// run — the allreduce shrinks as modules merge.
    g_allreduce_step: Gauge,
}

impl std::fmt::Debug for DistEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistEngine")
            .field("ranks", &self.ranks)
            .field("comm", &self.comm)
            .finish()
    }
}

impl DistEngine {
    /// An engine emulating `ranks` distributed processes.
    pub fn new(ranks: usize) -> Self {
        Self::with_obs(ranks, &Obs::disabled())
    }

    /// [`DistEngine::new`] with a telemetry handle: communication
    /// accounting streams into `infomap.dist.*` counters as it accrues.
    pub fn with_obs(ranks: usize, obs: &Obs) -> Self {
        assert!(ranks >= 1);
        DistEngine {
            ranks,
            obs: obs.clone(),
            comm: CommStats::default(),
            layout_nodes: usize::MAX,
            ranges: Vec::new(),
            seen: Cell::new((0, 0)),
            c_messages: obs.counter("infomap.dist.messages"),
            c_update_bytes: obs.counter("infomap.dist.update_bytes"),
            c_allreduce_bytes: obs.counter("infomap.dist.allreduce_bytes"),
            c_supersteps: obs.counter("infomap.dist.supersteps"),
            c_cut_arcs: obs.counter("infomap.dist.cut_arcs"),
            g_allreduce_step: obs.gauge("infomap.dist.allreduce.step_bytes"),
        }
    }

    /// Communication accounting accumulated so far. `cut_arcs` sums the
    /// cut of every rank layout built (one per level per outer pass) —
    /// the static per-superstep communication bound at each level.
    pub fn comm(&self) -> CommStats {
        self.comm
    }

    fn owner(&self, v: usize) -> usize {
        self.ranges.partition_point(|r| r.end <= v)
    }

    fn ensure_layout(&mut self, flow: &FlowNetwork) {
        let n = flow.num_nodes();
        if n == self.layout_nodes {
            return;
        }
        asa_simarch::machine::block_partition_into(n, self.ranks, &mut self.ranges);
        self.layout_nodes = n;
        let mut cut = 0u64;
        for v in 0..n as u32 {
            let owner = self.owner(v as usize);
            cut += flow
                .out_arcs(v)
                .filter(|&(t, _)| self.owner(t as usize) != owner)
                .count() as u64;
        }
        self.comm.cut_arcs += cut;
        self.c_cut_arcs.add(cut);
    }
}

impl DecideEngine for DistEngine {
    fn decide(&mut self, ctx: &SweepCtx<'_>) -> Vec<MoveDecision> {
        self.ensure_layout(ctx.flow);
        self.comm.supersteps += 1;
        self.c_supersteps.incr();
        let allreduce = (ctx.state.num_modules() * 16 * 2 * self.ranks) as u64;
        self.comm.allreduce_bytes += allreduce;
        self.c_allreduce_bytes.add(allreduce);
        self.g_allreduce_step.set(allreduce);

        // Rank-parallel decision phase: each rank owns a contiguous slice
        // of the (sorted) active set. Ranges ascend, so the concatenated
        // per-rank outputs are already in vertex order — the ordering the
        // schedule's apply step requires.
        let ranges = &self.ranges;
        let mut decisions: Vec<MoveDecision> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move |_| {
                        let lo = ctx.active.partition_point(|&v| (v as usize) < range.start);
                        let hi = ctx.active.partition_point(|&v| (v as usize) < range.end);
                        let mut acc = FastAccumulator::default();
                        let mut sink = asa_simarch::events::NullSink;
                        let mut scratch = FindBestScratch::default();
                        let mut out = Vec::new();
                        decide_range(
                            ctx.flow,
                            ctx.labels,
                            ctx.state,
                            &ctx.active[lo..hi],
                            &mut acc,
                            &mut sink,
                            &mut scratch,
                            &mut out,
                        );
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
        .expect("rank threads");
        decisions.sort_unstable_by_key(|d| d.vertex);
        decisions
    }

    fn after_sweep(&mut self, ctx: &SweepCtx<'_>, applied: &AppliedMoves, _elapsed: Duration) {
        // Exchange accounting: every applied move is announced to each
        // rank bordering the moved vertex (8 bytes per update).
        let mut messages = 0u64;
        let mut subs: Vec<usize> = Vec::new();
        for &v in &applied.moved {
            let owner = self.owner(v as usize);
            subs.clear();
            subs.extend(
                ctx.flow
                    .out_arcs(v)
                    .chain(ctx.flow.in_arcs(v))
                    .map(|(t, _)| self.owner(t as usize))
                    .filter(|&o| o != owner),
            );
            subs.sort_unstable();
            subs.dedup();
            messages += subs.len() as u64;
        }
        self.comm.messages += messages;
        self.comm.update_bytes += 8 * messages;
        self.c_messages.add(messages);
        self.c_update_bytes.add(8 * messages);
    }

    fn obs(&self) -> Obs {
        self.obs.clone()
    }

    fn sweep_fields(&self, fields: &mut Vec<(&'static str, Value)>) {
        fields.push(("path", Value::from("dist-hash")));
        fields.push(("ranks", Value::from(self.ranks as u64)));
        let (seen_m, seen_b) = self.seen.get();
        self.seen.set((self.comm.messages, self.comm.update_bytes));
        fields.push(("dist_messages", Value::from(self.comm.messages - seen_m)));
        fields.push((
            "dist_update_bytes",
            Value::from(self.comm.update_bytes - seen_b),
        ));
    }
}

/// Full multilevel community detection with the distributed engine as the
/// per-level parallel phase: the entry point a serving-engine shard uses
/// when configured for rank-partitioned execution. Returns the result —
/// bit-identical in partition and codelength to
/// [`crate::detect_communities_cancellable`] — plus the communication
/// accounting a cluster run of the same schedule would incur.
pub fn detect_communities_distributed_cancellable(
    graph: &CsrGraph,
    cfg: &InfomapConfig,
    ranks: usize,
    obs: &Obs,
    cancel: &CancelToken,
) -> (InfomapResult, CommStats) {
    let _run = obs.span("infomap");
    let t = Instant::now();
    let flow = {
        let _sp = obs.span("pagerank");
        FlowNetwork::from_graph(graph, cfg)
    };
    let pagerank = t.elapsed();
    let mut engine = DistEngine::with_obs(ranks, obs);
    let outcome = {
        let _sp = obs.span("optimize");
        optimize_multilevel_cancellable(&flow, cfg, &mut engine, cancel)
    };
    let mut timings = outcome.timings;
    timings.pagerank = pagerank;
    (
        InfomapResult {
            partition: outcome.partition,
            codelength: outcome.codelength,
            initial_codelength: outcome.initial_codelength,
            levels: outcome.levels,
            level_partitions: outcome.level_partitions,
            timings,
            interrupted: outcome.interrupted,
        },
        engine.comm(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::GraphBuilder;

    fn planted_flow() -> (FlowNetwork, Partition) {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 30,
                k_in: 10.0,
                k_out: 1.0,
            },
            5,
        );
        (
            FlowNetwork::from_graph(&g, &InfomapConfig::default()),
            truth,
        )
    }

    #[test]
    fn matches_single_rank_result() {
        let (flow, _) = planted_flow();
        let cfg = InfomapConfig::default();
        let single = distributed_local_moves(&flow, &cfg, 1);
        let multi = distributed_local_moves(&flow, &cfg, 4);
        // Identical decision schedule (frozen-state sweeps + ordered
        // apply): ranks only change where decisions are computed.
        assert_eq!(single.partition.labels(), multi.partition.labels());
        assert!((single.codelength - multi.codelength).abs() < 1e-9);
        assert_eq!(single.comm.messages, 0, "one rank never communicates");
        assert!(multi.comm.messages > 0, "ranks must exchange labels");
    }

    #[test]
    fn recovers_planted_structure() {
        // The vertex-level phase alone (no coarsening) may leave planted
        // communities split into fragments, but it must not *mix* them:
        // every detected community lies inside one planted community.
        let (flow, truth) = planted_flow();
        let mut result = distributed_local_moves(&flow, &InfomapConfig::default(), 3);
        result.partition.compact();
        assert!(result.partition.num_communities() >= truth.num_communities());
        let mut seen = std::collections::HashMap::new();
        for u in 0..flow.num_nodes() as u32 {
            let d = result.partition.community_of(u);
            let t = truth.community_of(u);
            let entry = seen.entry(d).or_insert(t);
            assert_eq!(
                *entry, t,
                "detected community {d} mixes planted communities"
            );
        }
    }

    #[test]
    fn communication_shrinks_over_supersteps() {
        // Messages are per moved vertex; as the optimization converges,
        // moves dry up, so total messages stay far below the worst case of
        // (cut arcs × supersteps).
        let (flow, _) = planted_flow();
        let result = distributed_local_moves(&flow, &InfomapConfig::default(), 4);
        let worst = result.comm.cut_arcs * result.comm.supersteps as u64;
        assert!(result.comm.messages < worst / 2);
        assert!(result.comm.supersteps >= 2);
        assert!(result.comm.update_bytes == 8 * result.comm.messages);
    }

    #[test]
    fn engine_pipeline_bit_identical_to_host() {
        // The promoted engine runs the full multilevel schedule; partition
        // and codelength must be bit-identical to the host path for every
        // rank count — this is the contract a serving shard relies on.
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 30,
                k_in: 10.0,
                k_out: 1.0,
            },
            5,
        );
        let cfg = InfomapConfig::default();
        let host = crate::detect_communities(&g, &cfg);
        for ranks in [1usize, 3, 4] {
            let (dist, comm) = detect_communities_distributed_cancellable(
                &g,
                &cfg,
                ranks,
                &Obs::disabled(),
                &CancelToken::none(),
            );
            assert_eq!(
                host.partition.labels(),
                dist.partition.labels(),
                "ranks={ranks}"
            );
            assert!(host.codelength.to_bits() == dist.codelength.to_bits());
            assert_eq!(host.levels.len(), dist.levels.len());
            assert!(comm.supersteps > 0);
            if ranks == 1 {
                assert_eq!(comm.messages, 0, "one rank never communicates");
            } else {
                assert!(comm.messages > 0, "ranks must exchange labels");
                assert_eq!(comm.update_bytes, 8 * comm.messages);
                assert!(comm.cut_arcs > 0);
            }
        }
    }

    #[test]
    fn cancellation_truncates_supersteps() {
        let (flow, _) = planted_flow();
        let cfg = InfomapConfig::default();
        let full = distributed_local_moves(&flow, &cfg, 4);
        assert!(!full.interrupted);
        assert!(full.comm.supersteps >= 2);
        let cancel = CancelToken::after_polls(1);
        let cut = distributed_local_moves_cancellable(&flow, &cfg, 4, &cancel);
        assert!(cut.interrupted);
        assert_eq!(cut.comm.supersteps, 1, "stops at the superstep boundary");
        assert!(cut.comm.supersteps < full.comm.supersteps);
    }

    #[test]
    fn engine_counters_mirror_comm_stats() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 4,
                community_size: 25,
                k_in: 9.0,
                k_out: 1.0,
            },
            11,
        );
        let obs = Obs::new_enabled();
        let (_, comm) = detect_communities_distributed_cancellable(
            &g,
            &InfomapConfig::default(),
            3,
            &obs,
            &CancelToken::none(),
        );
        assert_eq!(obs.counter("infomap.dist.messages").value(), comm.messages);
        assert_eq!(
            obs.counter("infomap.dist.update_bytes").value(),
            comm.update_bytes
        );
        assert_eq!(
            obs.counter("infomap.dist.supersteps").value(),
            comm.supersteps as u64
        );
        assert_eq!(obs.counter("infomap.dist.cut_arcs").value(), comm.cut_arcs);
    }

    #[test]
    fn disconnected_cliques_need_no_messages_after_convergence() {
        // Two cliques fully contained in different ranks: once each clique
        // collapses (superstep 1 moves), later supersteps move nothing.
        let mut b = GraphBuilder::undirected(8);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)] {
            b.add_edge(u, v, 1.0);
        }
        for &(u, v) in &[(4, 5), (5, 6), (6, 7), (7, 4), (4, 6), (5, 7)] {
            b.add_edge(u, v, 1.0);
        }
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let result = distributed_local_moves(&flow, &InfomapConfig::default(), 2);
        assert_eq!(result.comm.cut_arcs, 0);
        assert_eq!(result.comm.messages, 0);
        let mut p = result.partition;
        p.compact();
        assert_eq!(p.num_communities(), 2);
    }
}
