//! Distributed-memory emulation of the vertex-level phase.
//!
//! HyPC-Map (the paper's substrate) is a *hybrid* parallel Infomap:
//! shared-memory threads within a node and distributed ranks across nodes
//! (Faysal et al. 2021; the distributed design follows Faysal &
//! Arifuzzaman 2019). This module emulates the distributed layer on one
//! machine with real message passing over channels, so the harness can
//! report the communication volumes a cluster run would incur:
//!
//! * vertices are block-partitioned across `ranks`; each rank owns its
//!   labels and keeps *ghost* copies of remote neighbours' labels,
//! * a superstep = every rank decides moves for its vertices against its
//!   current (possibly stale) ghosts, then applies its accepted moves and
//!   sends `(vertex, new_label)` updates to every rank that borders the
//!   moved vertex,
//! * module statistics are refreshed by an emulated all-reduce whose byte
//!   volume is counted.
//!
//! Decisions within a superstep use frozen state (exactly like the
//! shared-memory phase), and conflicting moves are re-validated against
//! the refreshed global state at the start of the next superstep, so the
//! codelength is monotone and the final partition matches the
//! shared-memory optimizer's fixed points.

use asa_graph::{NodeId, Partition};
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

use crate::config::InfomapConfig;
use crate::find_best::{find_best_community, FindBestScratch, MoveDecision};
use crate::flow::FlowNetwork;
use crate::local_move::{apply_decisions, FastAccumulator};
use crate::mapeq::{plogp, MapState};

/// Communication statistics of a distributed run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CommStats {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Point-to-point label-update messages sent.
    pub messages: u64,
    /// Bytes in label-update messages (8 bytes per update).
    pub update_bytes: u64,
    /// Bytes moved by the per-superstep module-statistics all-reduce.
    pub allreduce_bytes: u64,
    /// Cut arcs (arcs crossing rank boundaries) — the static upper bound
    /// on per-superstep communication.
    pub cut_arcs: u64,
}

/// Result of the distributed vertex-level optimization.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// Final label per vertex.
    pub partition: Partition,
    /// Final codelength (vertex level only; no coarsening here).
    pub codelength: f64,
    /// Moves applied in total.
    pub moves: usize,
    /// Communication accounting.
    pub comm: CommStats,
}

/// One rank's view: owned range plus ghost labels for remote neighbours.
struct Rank {
    range: std::ops::Range<usize>,
    /// Full label vector; entries outside `range` are ghosts.
    labels: Vec<u32>,
    /// Ranks neighbouring each owned vertex (deduplicated), for routing
    /// updates.
    subscribers: Vec<Vec<usize>>,
}

fn owner_of(ranges: &[std::ops::Range<usize>], v: usize) -> usize {
    ranges
        .iter()
        .position(|r| r.contains(&v))
        .expect("vertex outside all ranges")
}

/// Runs the distributed vertex-level phase on `flow` with `ranks` emulated
/// processes, up to `cfg.max_sweeps` supersteps.
pub fn distributed_local_moves(
    flow: &FlowNetwork,
    cfg: &InfomapConfig,
    ranks: usize,
) -> DistributedResult {
    assert!(ranks >= 1);
    let n = flow.num_nodes();
    let ranges = asa_simarch::machine::block_partition(n, ranks);

    // Static routing: which ranks need to hear about each vertex's moves.
    let mut cut_arcs = 0u64;
    let mut rank_views: Vec<Rank> = ranges
        .iter()
        .cloned()
        .map(|range| Rank {
            subscribers: vec![Vec::new(); range.len()],
            range,
            labels: (0..n as u32).collect(),
        })
        .collect();
    for (ri, range) in ranges.iter().enumerate() {
        for v in range.clone() {
            let mut subs: Vec<usize> = flow
                .out_arcs(v as u32)
                .chain(flow.in_arcs(v as u32))
                .map(|(t, _)| owner_of(&ranges, t as usize))
                .filter(|&o| o != ri)
                .collect();
            subs.sort_unstable();
            subs.dedup();
            cut_arcs += flow
                .out_arcs(v as u32)
                .filter(|&(t, _)| owner_of(&ranges, t as usize) != ri)
                .count() as u64;
            rank_views[ri].subscribers[v - range.start] = subs;
        }
    }

    // Channels: one inbox per rank. An update message is `(vertex, label)`.
    type Update = (u32, u32);
    let channels: Vec<(Sender<Update>, Receiver<Update>)> =
        (0..ranks).map(|_| unbounded()).collect();
    let senders: Vec<Sender<Update>> = channels.iter().map(|(s, _)| s.clone()).collect();

    // Coordinator state (emulates the all-reduced module statistics).
    let node_plogp0: f64 = flow.node_flows().iter().copied().map(plogp).sum();
    let mut partition = Partition::singletons(n);
    let mut state = MapState::with_options(flow, &partition, node_plogp0, cfg.teleport_mode());
    let mut comm = CommStats {
        cut_arcs,
        ..Default::default()
    };
    let mut total_moves = 0usize;
    // Bytes of one all-reduce: every rank contributes (exit, flow) per
    // module; we count one gather + broadcast of the module table.
    let allreduce_bytes_per_step = (state.num_modules() * 16 * 2 * ranks) as u64;

    for _superstep in 0..cfg.max_sweeps {
        comm.supersteps += 1;
        comm.allreduce_bytes += allreduce_bytes_per_step;

        // --- Parallel decision phase: real threads, one per rank.
        let decisions: Vec<Vec<MoveDecision>> = crossbeam::thread::scope(|scope| {
            let state_ref = &state;
            let handles: Vec<_> = rank_views
                .iter()
                .map(|rank| {
                    scope.spawn(move |_| {
                        let mut acc = FastAccumulator::default();
                        let mut scratch = FindBestScratch::default();
                        let mut sink = asa_simarch::events::NullSink;
                        let mut out = Vec::new();
                        for v in rank.range.clone() {
                            let d = find_best_community(
                                flow,
                                &rank.labels,
                                state_ref,
                                v as NodeId,
                                &mut acc,
                                &mut sink,
                                &mut scratch,
                            );
                            if d.best_module != rank.labels[v] {
                                out.push(d);
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("rank threads");

        // --- Apply at the coordinator (deterministic order), as the
        // owner-side resolution of conflicting moves.
        let mut all: Vec<MoveDecision> = decisions.into_iter().flatten().collect();
        all.sort_unstable_by_key(|d| d.vertex);
        let applied = apply_decisions(flow, &mut partition, &mut state, &all, cfg.min_improvement);
        total_moves += applied.applied;

        // --- Exchange: each moved vertex's new label goes to every
        // subscribing rank through its channel.
        for &v in &applied.moved {
            let ri = owner_of(&ranges, v as usize);
            let new_label = partition.community_of(v);
            let local = v as usize - ranges[ri].start;
            for &sub in &rank_views[ri].subscribers[local] {
                senders[sub].send((v, new_label)).expect("send");
                comm.messages += 1;
                comm.update_bytes += 8;
            }
        }
        // Owners update their own copy; ranks drain their inboxes.
        for (ri, rank) in rank_views.iter_mut().enumerate() {
            for v in rank.range.clone() {
                rank.labels[v] = partition.community_of(v as u32);
            }
            while let Ok((v, l)) = channels[ri].1.try_recv() {
                rank.labels[v as usize] = l;
            }
        }

        if applied.applied == 0 {
            break;
        }
    }

    DistributedResult {
        codelength: state.codelength(),
        partition,
        moves: total_moves,
        comm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::GraphBuilder;

    fn planted_flow() -> (FlowNetwork, Partition) {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 30,
                k_in: 10.0,
                k_out: 1.0,
            },
            5,
        );
        (
            FlowNetwork::from_graph(&g, &InfomapConfig::default()),
            truth,
        )
    }

    #[test]
    fn matches_single_rank_result() {
        let (flow, _) = planted_flow();
        let cfg = InfomapConfig::default();
        let single = distributed_local_moves(&flow, &cfg, 1);
        let multi = distributed_local_moves(&flow, &cfg, 4);
        // Identical decision schedule (frozen-state sweeps + ordered
        // apply): ranks only change where decisions are computed.
        assert_eq!(single.partition.labels(), multi.partition.labels());
        assert!((single.codelength - multi.codelength).abs() < 1e-9);
        assert_eq!(single.comm.messages, 0, "one rank never communicates");
        assert!(multi.comm.messages > 0, "ranks must exchange labels");
    }

    #[test]
    fn recovers_planted_structure() {
        // The vertex-level phase alone (no coarsening) may leave planted
        // communities split into fragments, but it must not *mix* them:
        // every detected community lies inside one planted community.
        let (flow, truth) = planted_flow();
        let mut result = distributed_local_moves(&flow, &InfomapConfig::default(), 3);
        result.partition.compact();
        assert!(result.partition.num_communities() >= truth.num_communities());
        let mut seen = std::collections::HashMap::new();
        for u in 0..flow.num_nodes() as u32 {
            let d = result.partition.community_of(u);
            let t = truth.community_of(u);
            let entry = seen.entry(d).or_insert(t);
            assert_eq!(
                *entry, t,
                "detected community {d} mixes planted communities"
            );
        }
    }

    #[test]
    fn communication_shrinks_over_supersteps() {
        // Messages are per moved vertex; as the optimization converges,
        // moves dry up, so total messages stay far below the worst case of
        // (cut arcs × supersteps).
        let (flow, _) = planted_flow();
        let result = distributed_local_moves(&flow, &InfomapConfig::default(), 4);
        let worst = result.comm.cut_arcs * result.comm.supersteps as u64;
        assert!(result.comm.messages < worst / 2);
        assert!(result.comm.supersteps >= 2);
        assert!(result.comm.update_bytes == 8 * result.comm.messages);
    }

    #[test]
    fn disconnected_cliques_need_no_messages_after_convergence() {
        // Two cliques fully contained in different ranks: once each clique
        // collapses (superstep 1 moves), later supersteps move nothing.
        let mut b = GraphBuilder::undirected(8);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)] {
            b.add_edge(u, v, 1.0);
        }
        for &(u, v) in &[(4, 5), (5, 6), (6, 7), (7, 4), (4, 6), (5, 7)] {
            b.add_edge(u, v, 1.0);
        }
        let flow = FlowNetwork::from_graph(&b.build(), &InfomapConfig::default());
        let result = distributed_local_moves(&flow, &InfomapConfig::default(), 2);
        assert_eq!(result.comm.cut_arcs, 0);
        assert_eq!(result.comm.messages, 0);
        let mut p = result.partition;
        p.compact();
        assert_eq!(p.num_communities(), 2);
    }
}
