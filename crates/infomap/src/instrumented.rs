//! Simulated execution of the `FindBestCommunity` kernel — the ZSim
//! experiments.
//!
//! This driver runs the same multi-level optimization as [`crate::driver`],
//! but every `FindBestCommunity` evaluation executes against a simulated
//! core ([`asa_simarch::CoreModel`]) with a per-core accumulation device,
//! exactly like the paper's setup: one OpenMP thread per core, each with a
//! private software hash table (Baseline) or core-local CAM (ASA). The
//! partitioning, move application, and coarsening happen on the host and
//! are not charged — the paper's simulated numbers likewise cover the
//! `FindBestCommunity` kernel ("Timing breakdown of the simulated kernel
//! (FindBestCommunity)", Fig. 7).

use std::ops::Range;
use std::time::Instant;

use asa_accel::{AsaAccumulator, AsaConfig, AsaStats};
use asa_graph::{CsrGraph, Partition};
use asa_hashsim::{ChainedAccumulator, LinearProbeAccumulator};
use asa_obs::{Obs, Value};
use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{phase, EventSink};
use asa_simarch::machine::block_partition_into;
use asa_simarch::pipeline::SimPipeline;
use asa_simarch::trace::{BatchedCore, TraceBuf, TraceCapture};
use asa_simarch::{CoreModel, KernelReport, MachineConfig, SimPipelineConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::config::InfomapConfig;
use crate::find_best::{FindBestScratch, MoveDecision};
use crate::flow::FlowNetwork;
use crate::local_move::decide_range;
use crate::schedule::{optimize_multilevel, DecideEngine, SweepCtx};

/// Concatenates per-rank decision buffers in rank order. The ranks hold
/// contiguous slices of the (sorted) active set, so concatenation keeps
/// the stream ordered by vertex — identical to the flatten-collect it
/// replaces, without freeing the buffers.
fn concat_decisions(outs: &mut [Vec<MoveDecision>]) -> Vec<MoveDecision> {
    let total = outs.iter().map(Vec::len).sum();
    let mut all = Vec::with_capacity(total);
    for out in outs {
        all.append(out);
    }
    all
}

/// Which accumulation device the simulated cores use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Device {
    /// Instrumented chained hash table (`std::unordered_map` model) — the
    /// paper's Baseline.
    SoftwareHash,
    /// Instrumented open-addressing table (ablation).
    LinearProbe,
    /// The ASA accelerator with the given CAM configuration.
    Asa(AsaConfig),
}

impl Device {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Device::SoftwareHash => "baseline",
            Device::LinearProbe => "linear-probe",
            Device::Asa(_) => "asa",
        }
    }
}

/// How micro-events reach the simulated cores.
///
/// All three modes produce bit-identical [`SimulatedRun`] counters,
/// partitions, and codelengths (the trace records the exact event stream
/// and replay performs the same arithmetic in the same order); they differ
/// only in *when* the core models run relative to the workload kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SimMode {
    /// Per-event charging: every [`EventSink`] call walks the core model
    /// inline on the workload thread. The reference path.
    #[default]
    Inline,
    /// Record into per-core SoA trace buffers, replay in blocks through
    /// [`CoreModel::consume_batch`] on the same thread.
    Batched {
        /// Events per replay block.
        buffer_events: usize,
    },
    /// Record into per-core trace buffers shipped to dedicated simulation
    /// threads ([`SimPipeline`]), overlapping workload compute with
    /// simulation.
    Pipelined(SimPipelineConfig),
}

impl SimMode {
    /// Display name ("inline", "batched", "pipelined").
    pub fn name(&self) -> &'static str {
        match self {
            SimMode::Inline => "inline",
            SimMode::Batched { .. } => "batched",
            SimMode::Pipelined(_) => "pipelined",
        }
    }
}

/// Counters of one simulated sweep (one "iteration").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSim {
    /// Hierarchy level (0 = vertex phase).
    pub level: usize,
    /// Sweep index within the level.
    pub sweep: usize,
    /// Active vertices evaluated.
    pub active: usize,
    /// Per-core total reports.
    pub per_core: Vec<KernelReport>,
    /// Barrier-combined report: counters summed, cycles = slowest core.
    pub combined: KernelReport,
    /// Per-phase reports summed over cores
    /// (`[compute, hash, overflow]`).
    pub phases: [KernelReport; phase::COUNT],
}

/// Full result of a simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulatedRun {
    /// Device name ("baseline", "asa", ...).
    pub device: String,
    /// Machine configuration simulated.
    pub machine: MachineConfig,
    /// One entry per sweep, across all levels.
    pub sweeps: Vec<SweepSim>,
    /// Totals across sweeps (cycles = Σ of per-sweep barrier cycles).
    pub total: KernelReport,
    /// Per-phase totals summed over cores and sweeps.
    pub phase_totals: [KernelReport; phase::COUNT],
    /// ASA device statistics (None for software devices).
    pub asa_stats: Option<AsaStatsSummary>,
    /// Final partition over the original vertices.
    pub partition: Partition,
    /// Final codelength.
    pub codelength: f64,
    /// Simulation mode name ("inline", "batched", "pipelined").
    pub sim_mode: String,
    /// Micro-events that flowed through trace buffers (0 in inline mode,
    /// which never materializes events; the stream is identical across
    /// modes, so a batched run's count serves for all three).
    pub events: u64,
    /// Host seconds spent inside the simulation engine: the parallel
    /// decide (record + replay) plus the per-sweep report barrier. This is
    /// the denominator of the events/sec throughput metric — it excludes
    /// the schedule work (move application, coarsening) that is identical
    /// across modes.
    pub sim_seconds: f64,
}

/// Serializable subset of [`AsaStats`] summed over cores.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AsaStatsSummary {
    /// Total accumulate instructions.
    pub accumulates: u64,
    /// CAM hits.
    pub hits: u64,
    /// CAM inserts.
    pub inserts: u64,
    /// LRU evictions to the overflow queue.
    pub evictions: u64,
    /// Gather rounds.
    pub gathers: u64,
    /// Gather rounds requiring software sort-and-merge.
    pub overflowed_gathers: u64,
    /// Fraction of gathers that overflowed.
    pub overflow_rate: f64,
}

impl From<AsaStats> for AsaStatsSummary {
    fn from(s: AsaStats) -> Self {
        Self {
            accumulates: s.accumulates,
            hits: s.hits,
            inserts: s.inserts,
            evictions: s.evictions,
            gathers: s.gathers,
            overflowed_gathers: s.overflowed_gathers,
            overflow_rate: s.overflow_rate(),
        }
    }
}

impl SimulatedRun {
    /// Seconds spent in the simulated kernel (barrier semantics).
    pub fn kernel_seconds(&self) -> f64 {
        self.total.seconds(self.machine.freq_ghz)
    }

    /// Seconds attributed to hash operations (accumulate + gather +
    /// overflow merge), summed over cores and divided by core count — i.e.
    /// the average per-core hash time the paper's multi-core breakdowns
    /// plot.
    pub fn hash_seconds(&self) -> f64 {
        let cycles =
            self.phase_totals[phase::HASH].cycles + self.phase_totals[phase::OVERFLOW].cycles;
        cycles / self.machine.cores as f64 / (self.machine.freq_ghz * 1e9)
    }

    /// Share of hash-operation cycles within the kernel (Fig. 2b).
    pub fn hash_share(&self) -> f64 {
        let total: f64 = self.phase_totals.iter().map(|r| r.cycles).sum();
        if total == 0.0 {
            0.0
        } else {
            (self.phase_totals[phase::HASH].cycles + self.phase_totals[phase::OVERFLOW].cycles)
                / total
        }
    }

    /// Share of overflow-handling cycles within hash operations
    /// (the paper: 9.86% for Pokec, 13.31% for Orkut).
    pub fn overflow_share(&self) -> f64 {
        let hash =
            self.phase_totals[phase::HASH].cycles + self.phase_totals[phase::OVERFLOW].cycles;
        if hash == 0.0 {
            0.0
        } else {
            self.phase_totals[phase::OVERFLOW].cycles / hash
        }
    }

    /// Average per-core instruction count (Fig. 9).
    pub fn instructions_per_core(&self) -> f64 {
        self.total.instructions as f64 / self.machine.cores as f64
    }

    /// Average per-core misprediction count (Fig. 10).
    pub fn mispredictions_per_core(&self) -> f64 {
        self.total.mispredictions as f64 / self.machine.cores as f64
    }

    /// Average per-core CPI (Fig. 11): cycles *summed over cores* (the
    /// phase totals) divided by instructions summed over cores. The
    /// barrier-combined `total.cpi()` would divide max-core cycles by
    /// all-core instructions, which is parallel throughput, not per-core
    /// CPI.
    pub fn avg_core_cpi(&self) -> f64 {
        let cycles: f64 = self.phase_totals.iter().map(|r| r.cycles).sum();
        if self.total.instructions == 0 {
            0.0
        } else {
            cycles / self.total.instructions as f64
        }
    }
}

/// Simulates the full Infomap run on `graph` with the given machine and
/// device in the default [`SimMode::Inline`] mode, returning per-sweep and
/// total counters for the `FindBestCommunity` kernel.
pub fn simulate_infomap(
    graph: &CsrGraph,
    icfg: &InfomapConfig,
    mcfg: &MachineConfig,
    device: Device,
) -> SimulatedRun {
    simulate_infomap_mode(graph, icfg, mcfg, device, &SimMode::Inline)
}

/// [`simulate_infomap`] with an explicit [`SimMode`]. All modes return
/// bit-identical counters; batched/pipelined additionally report event
/// throughput ([`SimulatedRun::events`], [`SimulatedRun::sim_seconds`]).
pub fn simulate_infomap_mode(
    graph: &CsrGraph,
    icfg: &InfomapConfig,
    mcfg: &MachineConfig,
    device: Device,
    mode: &SimMode,
) -> SimulatedRun {
    simulate_infomap_obs(graph, icfg, mcfg, device, mode, &Obs::disabled())
}

/// [`simulate_infomap_mode`] with a telemetry handle: per-device
/// distributions (CAM occupancy, chain/probe lengths), pipeline
/// backpressure counters, and per-sweep convergence records flow into
/// `obs`. A disabled handle makes this identical to
/// [`simulate_infomap_mode`].
pub fn simulate_infomap_obs(
    graph: &CsrGraph,
    icfg: &InfomapConfig,
    mcfg: &MachineConfig,
    device: Device,
    mode: &SimMode,
    obs: &Obs,
) -> SimulatedRun {
    let _sp = obs.span("simulate");
    let flow = {
        let _sp = obs.span("pagerank");
        FlowNetwork::from_graph(graph, icfg)
    };
    match device {
        Device::SoftwareHash => {
            let mut accs: Vec<ChainedAccumulator> =
                (0..mcfg.cores).map(|_| ChainedAccumulator::new()).collect();
            accs.iter_mut().for_each(|a| a.attach_obs(obs));
            let (run, _) = run_device(flow, icfg, mcfg, device, mode, accs, obs);
            run
        }
        Device::LinearProbe => {
            let mut accs: Vec<LinearProbeAccumulator> = (0..mcfg.cores)
                .map(|_| LinearProbeAccumulator::new())
                .collect();
            accs.iter_mut().for_each(|a| a.attach_obs(obs));
            let (run, _) = run_device(flow, icfg, mcfg, device, mode, accs, obs);
            run
        }
        Device::Asa(cfg) => {
            let mut accs: Vec<AsaAccumulator> =
                (0..mcfg.cores).map(|_| AsaAccumulator::new(cfg)).collect();
            accs.iter_mut().for_each(|a| a.attach_obs(obs));
            let (mut run, accs) = run_device(flow, icfg, mcfg, device, mode, accs, obs);
            let mut total = AsaStats::default();
            for a in &accs {
                let s = a.stats();
                total.accumulates += s.accumulates;
                total.hits += s.hits;
                total.inserts += s.inserts;
                total.evictions += s.evictions;
                total.gathers += s.gathers;
                total.overflowed_gathers += s.overflowed_gathers;
                total.merged_pairs += s.merged_pairs;
            }
            run.asa_stats = Some(total.into());
            run
        }
    }
}

/// Wall-clock ("native") execution of the same kernel schedule.
#[derive(Debug, Clone)]
pub struct NativeRun {
    /// Seconds per sweep (all levels, in execution order).
    pub sweep_seconds: Vec<f64>,
    /// Active vertices per sweep.
    pub sweep_active: Vec<usize>,
    /// Final partition.
    pub partition: Partition,
    /// Final codelength.
    pub codelength: f64,
}

/// Runs the identical kernel schedule *natively*: the same per-core device
/// data structures but a [`asa_simarch::NullSink`], measured with
/// wall-clock timers on `cores` host threads. This is the "Native" column
/// of the paper's Tables III/IV — the same binary run without the
/// simulator.
pub fn native_infomap(
    graph: &CsrGraph,
    icfg: &InfomapConfig,
    cores: usize,
    device: Device,
) -> NativeRun {
    let flow = FlowNetwork::from_graph(graph, icfg);
    match device {
        Device::SoftwareHash => native_device(
            flow,
            icfg,
            cores,
            (0..cores).map(|_| ChainedAccumulator::new()).collect(),
        ),
        Device::LinearProbe => native_device(
            flow,
            icfg,
            cores,
            (0..cores).map(|_| LinearProbeAccumulator::new()).collect(),
        ),
        Device::Asa(cfg) => native_device(
            flow,
            icfg,
            cores,
            (0..cores).map(|_| AsaAccumulator::new(cfg)).collect(),
        ),
    }
}

/// Runs the per-core decide loop in parallel: rank `i` evaluates
/// `active[ranges[i]]` against its private accumulator and event sink.
/// Shared by the native engine (null sinks) and every [`SimMode`] arm of
/// the simulated engine (core models, batched cores, pipeline pipes).
fn decide_parallel<A: FlowAccumulator + Send, S: EventSink + Send>(
    ctx: &SweepCtx<'_>,
    ranges: &[Range<usize>],
    sinks: &mut [S],
    accs: &mut [A],
    scratches: &mut [FindBestScratch],
    outs: &mut [Vec<MoveDecision>],
) {
    let (flow, labels, state, active) = (ctx.flow, ctx.labels, ctx.state, ctx.active);
    sinks
        .par_iter_mut()
        .zip(accs.par_iter_mut())
        .zip(scratches.par_iter_mut())
        .zip(outs.par_iter_mut())
        .enumerate()
        .for_each(|(i, (((sink, acc), scratch), out))| {
            out.clear();
            decide_range(
                flow,
                labels,
                state,
                &active[ranges[i].clone()],
                acc,
                sink,
                scratch,
                out,
            );
        });
}

/// Native engine: one host thread per emulated core, null event sinks,
/// per-sweep wall-clock recorded by the schedule callback.
struct NativeEngine<A> {
    pool: rayon::ThreadPool,
    accs: Vec<A>,
    sinks: Vec<asa_simarch::NullSink>,
    scratches: Vec<FindBestScratch>,
    outs: Vec<Vec<MoveDecision>>,
    ranges: Vec<Range<usize>>,
    sweep_seconds: Vec<f64>,
    sweep_active: Vec<usize>,
}

impl<A: FlowAccumulator + Send> DecideEngine for NativeEngine<A> {
    fn decide(&mut self, ctx: &SweepCtx<'_>) -> Vec<MoveDecision> {
        block_partition_into(ctx.active.len(), self.accs.len(), &mut self.ranges);
        let (ranges, sinks) = (&self.ranges, &mut self.sinks);
        let (accs, scratches, outs) = (&mut self.accs, &mut self.scratches, &mut self.outs);
        self.pool
            .install(|| decide_parallel(ctx, ranges, sinks, accs, scratches, outs));
        concat_decisions(outs)
    }

    fn after_sweep(
        &mut self,
        ctx: &SweepCtx<'_>,
        _applied: &crate::local_move::AppliedMoves,
        elapsed: std::time::Duration,
    ) {
        self.sweep_seconds.push(elapsed.as_secs_f64());
        self.sweep_active.push(ctx.active.len());
    }
}

fn native_device<A: FlowAccumulator + Send>(
    flow: FlowNetwork,
    icfg: &InfomapConfig,
    cores: usize,
    accs: Vec<A>,
) -> NativeRun {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(cores)
        .build()
        .expect("thread pool");
    let mut engine = NativeEngine {
        pool,
        sinks: vec![asa_simarch::NullSink; accs.len()],
        scratches: (0..accs.len())
            .map(|_| FindBestScratch::default())
            .collect(),
        outs: vec![Vec::new(); accs.len()],
        ranges: Vec::with_capacity(accs.len()),
        accs,
        sweep_seconds: Vec::new(),
        sweep_active: Vec::new(),
    };
    let outcome = optimize_multilevel(&flow, icfg, &mut engine);
    NativeRun {
        sweep_seconds: engine.sweep_seconds,
        sweep_active: engine.sweep_active,
        partition: outcome.partition,
        codelength: outcome.codelength,
    }
}

/// Trace-capture engine: the identical kernel schedule driven through
/// chunked recording sinks, no core models attached.
struct CaptureEngine<A> {
    pool: rayon::ThreadPool,
    accs: Vec<A>,
    sinks: Vec<TraceCapture>,
    scratches: Vec<FindBestScratch>,
    outs: Vec<Vec<MoveDecision>>,
    ranges: Vec<Range<usize>>,
}

impl<A: FlowAccumulator + Send> DecideEngine for CaptureEngine<A> {
    fn decide(&mut self, ctx: &SweepCtx<'_>) -> Vec<MoveDecision> {
        block_partition_into(ctx.active.len(), self.accs.len(), &mut self.ranges);
        let (ranges, sinks) = (&self.ranges, &mut self.sinks);
        let (accs, scratches, outs) = (&mut self.accs, &mut self.scratches, &mut self.outs);
        self.pool
            .install(|| decide_parallel(ctx, ranges, sinks, accs, scratches, outs));
        concat_decisions(outs)
    }
}

/// Captures a prefix of each emulated core's micro-event stream from the
/// identical kernel schedule: up to `limit_events` events per core, in
/// [`TraceBuf`] chunks of `chunk_events`. Benches replay the captured
/// buffers through both simulation paths to time the replay kernels on
/// the real workload stream, outside the engine.
pub fn capture_trace(
    graph: &CsrGraph,
    icfg: &InfomapConfig,
    cores: usize,
    device: Device,
    chunk_events: usize,
    limit_events: usize,
) -> Vec<Vec<TraceBuf>> {
    let flow = FlowNetwork::from_graph(graph, icfg);
    let sinks = (0..cores)
        .map(|_| TraceCapture::new(chunk_events, limit_events))
        .collect();
    match device {
        Device::SoftwareHash => capture_device(
            flow,
            icfg,
            sinks,
            (0..cores).map(|_| ChainedAccumulator::new()).collect(),
        ),
        Device::LinearProbe => capture_device(
            flow,
            icfg,
            sinks,
            (0..cores).map(|_| LinearProbeAccumulator::new()).collect(),
        ),
        Device::Asa(cfg) => capture_device(
            flow,
            icfg,
            sinks,
            (0..cores).map(|_| AsaAccumulator::new(cfg)).collect(),
        ),
    }
}

fn capture_device<A: FlowAccumulator + Send>(
    flow: FlowNetwork,
    icfg: &InfomapConfig,
    sinks: Vec<TraceCapture>,
    accs: Vec<A>,
) -> Vec<Vec<TraceBuf>> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(accs.len())
        .build()
        .expect("thread pool");
    let mut engine = CaptureEngine {
        pool,
        sinks,
        scratches: (0..accs.len())
            .map(|_| FindBestScratch::default())
            .collect(),
        outs: vec![Vec::new(); accs.len()],
        ranges: Vec::with_capacity(accs.len()),
        accs,
    };
    optimize_multilevel(&flow, icfg, &mut engine);
    engine
        .sinks
        .into_iter()
        .map(TraceCapture::into_bufs)
        .collect()
}

/// The per-core simulation state behind a [`SimMode`]: who owns the core
/// models and how events reach them. Allocated once per run and reused
/// across every sweep and hierarchy level (no per-kernel reallocation).
enum CoreBackend {
    /// Core models charged inline on the workload threads.
    Inline(Vec<CoreModel>),
    /// Core models behind same-thread trace buffers.
    Batched(Vec<BatchedCore>),
    /// Core models owned by dedicated simulation threads.
    Pipelined(SimPipeline),
}

impl CoreBackend {
    fn new(mcfg: &MachineConfig, mode: &SimMode, obs: &Obs) -> Self {
        match mode {
            SimMode::Inline => {
                CoreBackend::Inline((0..mcfg.cores).map(|_| CoreModel::new(mcfg)).collect())
            }
            SimMode::Batched { buffer_events } => CoreBackend::Batched(
                (0..mcfg.cores)
                    .map(|_| {
                        let mut core = BatchedCore::new(CoreModel::new(mcfg), *buffer_events);
                        core.attach_obs(obs);
                        core
                    })
                    .collect(),
            ),
            SimMode::Pipelined(pcfg) => {
                CoreBackend::Pipelined(SimPipeline::with_obs(mcfg, pcfg, obs))
            }
        }
    }

    fn num_cores(&self) -> usize {
        match self {
            CoreBackend::Inline(cores) => cores.len(),
            CoreBackend::Batched(cores) => cores.len(),
            CoreBackend::Pipelined(pipeline) => pipeline.num_cores(),
        }
    }

    /// Events that flowed through trace buffers (0 for inline).
    fn events(&self) -> u64 {
        match self {
            CoreBackend::Inline(_) => 0,
            CoreBackend::Batched(cores) => cores.iter().map(BatchedCore::events).sum(),
            CoreBackend::Pipelined(pipeline) => pipeline.events(),
        }
    }

    /// Sweep barrier: drains any buffered events and returns each core's
    /// per-phase reports (resetting them), in core order.
    fn barrier_phase_reports(&mut self) -> Vec<[KernelReport; phase::COUNT]> {
        match self {
            CoreBackend::Inline(cores) => cores
                .iter_mut()
                .map(CoreModel::take_phase_reports)
                .collect(),
            CoreBackend::Batched(cores) => cores
                .iter_mut()
                .map(BatchedCore::take_phase_reports)
                .collect(),
            CoreBackend::Pipelined(pipeline) => pipeline.barrier_phase_reports(),
        }
    }
}

/// Simulated engine: each emulated core decides its share of the active
/// set against its private accumulation device, with micro-events reaching
/// the core models through the mode's [`CoreBackend`]; per-sweep counters
/// are collected at the schedule's barrier callback.
struct SimEngine<A> {
    backend: CoreBackend,
    accs: Vec<A>,
    scratches: Vec<FindBestScratch>,
    outs: Vec<Vec<MoveDecision>>,
    ranges: Vec<Range<usize>>,
    sweeps: Vec<SweepSim>,
    sim_seconds: f64,
    obs: Obs,
    device_name: &'static str,
    mode_name: &'static str,
}

impl<A: FlowAccumulator + Send> DecideEngine for SimEngine<A> {
    fn decide(&mut self, ctx: &SweepCtx<'_>) -> Vec<MoveDecision> {
        block_partition_into(ctx.active.len(), self.backend.num_cores(), &mut self.ranges);
        let start = Instant::now();
        let (ranges, accs) = (&self.ranges, &mut self.accs);
        let (scratches, outs) = (&mut self.scratches, &mut self.outs);
        match &mut self.backend {
            CoreBackend::Inline(cores) => {
                decide_parallel(ctx, ranges, cores, accs, scratches, outs)
            }
            CoreBackend::Batched(cores) => {
                decide_parallel(ctx, ranges, cores, accs, scratches, outs)
            }
            CoreBackend::Pipelined(pipeline) => {
                decide_parallel(ctx, ranges, pipeline.pipes_mut(), accs, scratches, outs)
            }
        }
        self.sim_seconds += start.elapsed().as_secs_f64();
        concat_decisions(outs)
    }

    fn after_sweep(
        &mut self,
        ctx: &SweepCtx<'_>,
        _applied: &crate::local_move::AppliedMoves,
        _elapsed: std::time::Duration,
    ) {
        // Barrier: collect and reset every core's counters for this sweep.
        // Called *after* the host applies the sweep's moves, so pipelined
        // simulation threads drain their tails while the host works.
        let start = Instant::now();
        let reports = self.backend.barrier_phase_reports();
        let mut per_core = Vec::with_capacity(reports.len());
        let mut phases: [KernelReport; phase::COUNT] = Default::default();
        for p in &reports {
            per_core.push(KernelReport::sum(p.iter()));
            for (agg, part) in phases.iter_mut().zip(p.iter()) {
                agg.merge(part);
            }
        }
        self.sim_seconds += start.elapsed().as_secs_f64();
        let combined = KernelReport::parallel(per_core.iter());
        self.sweeps.push(SweepSim {
            level: ctx.level,
            sweep: ctx.sweep,
            active: ctx.active.len(),
            per_core,
            combined,
            phases,
        });
    }

    fn obs(&self) -> Obs {
        self.obs.clone()
    }

    fn sweep_fields(&self, fields: &mut Vec<(&'static str, Value)>) {
        fields.push(("device", Value::from(self.device_name)));
        fields.push(("sim_mode", Value::from(self.mode_name)));
        // `after_sweep` ran just before the schedule emits the record, so
        // the last entry is this sweep's barrier-combined report.
        if let Some(s) = self.sweeps.last() {
            fields.push(("sim_cycles", Value::from(s.combined.cycles)));
            fields.push(("sim_instructions", Value::from(s.combined.instructions)));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_device<A: FlowAccumulator + Send>(
    flow: FlowNetwork,
    icfg: &InfomapConfig,
    mcfg: &MachineConfig,
    device: Device,
    mode: &SimMode,
    accs: Vec<A>,
    obs: &Obs,
) -> (SimulatedRun, Vec<A>) {
    let mut engine = SimEngine {
        backend: CoreBackend::new(mcfg, mode, obs),
        scratches: (0..mcfg.cores)
            .map(|_| FindBestScratch::default())
            .collect(),
        outs: vec![Vec::new(); mcfg.cores],
        ranges: Vec::with_capacity(mcfg.cores),
        accs,
        sweeps: Vec::new(),
        sim_seconds: 0.0,
        obs: obs.clone(),
        device_name: device.name(),
        mode_name: mode.name(),
    };
    let outcome = {
        let _sp = obs.span("optimize");
        optimize_multilevel(&flow, icfg, &mut engine)
    };

    let mut total = KernelReport::default();
    let mut phase_totals: [KernelReport; phase::COUNT] = Default::default();
    for s in &engine.sweeps {
        total.merge(&s.combined);
        for (agg, part) in phase_totals.iter_mut().zip(s.phases.iter()) {
            agg.merge(part);
        }
    }

    (
        SimulatedRun {
            device: device.name().to_string(),
            machine: mcfg.clone(),
            sweeps: engine.sweeps,
            total,
            phase_totals,
            asa_stats: None,
            partition: outcome.partition,
            codelength: outcome.codelength,
            sim_mode: mode.name().to_string(),
            events: engine.backend.events(),
            sim_seconds: engine.sim_seconds,
        },
        engine.accs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::generators::{planted_partition, PlantedConfig};

    fn small_graph() -> CsrGraph {
        planted_partition(
            &PlantedConfig {
                communities: 6,
                community_size: 30,
                k_in: 10.0,
                k_out: 1.0,
            },
            13,
        )
        .0
    }

    fn assert_report_bitwise(a: &KernelReport, b: &KernelReport, what: &str) {
        assert_eq!(a.instructions, b.instructions, "{what}: instructions");
        assert_eq!(a.branches, b.branches, "{what}: branches");
        assert_eq!(a.mispredictions, b.mispredictions, "{what}: mispredictions");
        assert_eq!(a.loads, b.loads, "{what}: loads");
        assert_eq!(a.stores, b.stores, "{what}: stores");
        assert_eq!(a.l1_misses, b.l1_misses, "{what}: l1_misses");
        assert_eq!(a.l2_misses, b.l2_misses, "{what}: l2_misses");
        assert_eq!(a.l3_misses, b.l3_misses, "{what}: l3_misses");
        assert_eq!(a.cycles.to_bits(), b.cycles.to_bits(), "{what}: cycles");
    }

    /// Every counter the run reports — totals, per-phase totals, and every
    /// sweep's per-core reports — plus the answer itself must be
    /// bit-identical between two modes.
    fn assert_runs_bitwise(a: &SimulatedRun, b: &SimulatedRun) {
        let what = format!("{} vs {}", a.sim_mode, b.sim_mode);
        assert_eq!(a.partition.labels(), b.partition.labels(), "{what}");
        assert_eq!(
            a.codelength.to_bits(),
            b.codelength.to_bits(),
            "{what}: codelength"
        );
        assert_report_bitwise(&a.total, &b.total, &format!("{what}: total"));
        for (p, (ra, rb)) in a.phase_totals.iter().zip(b.phase_totals.iter()).enumerate() {
            assert_report_bitwise(ra, rb, &format!("{what}: phase {p}"));
        }
        assert_eq!(a.sweeps.len(), b.sweeps.len(), "{what}: sweep count");
        for (sa, sb) in a.sweeps.iter().zip(b.sweeps.iter()) {
            assert_eq!(
                (sa.level, sa.sweep, sa.active),
                (sb.level, sb.sweep, sb.active)
            );
            for (c, (ra, rb)) in sa.per_core.iter().zip(sb.per_core.iter()).enumerate() {
                assert_report_bitwise(
                    ra,
                    rb,
                    &format!("{what}: level {} sweep {} core {c}", sa.level, sa.sweep),
                );
            }
        }
    }

    #[test]
    fn batched_and_pipelined_match_inline_bitwise() {
        let g = asa_graph::generators::lfr_benchmark(
            &asa_graph::generators::LfrConfig {
                n: 250,
                ..Default::default()
            },
            29,
        )
        .graph;
        let icfg = InfomapConfig::default();
        let mcfg = MachineConfig::baseline(3);
        // Tiny buffers and a 2-thread pipeline with minimal double
        // buffering: many batch splits, multi-seat workers, and real
        // backpressure stalls — the result must not change at all.
        let modes = [
            SimMode::Inline,
            SimMode::Batched { buffer_events: 256 },
            SimMode::Pipelined(SimPipelineConfig {
                buffer_events: 256,
                buffers_per_core: 2,
                sim_threads: 2,
            }),
        ];
        for device in [
            Device::SoftwareHash,
            // 4-entry CAM: overflow phases and dependent-load toggles get
            // exercised as in-stream markers.
            Device::Asa(AsaConfig {
                cam_bytes: 64,
                entry_bytes: 16,
                ..AsaConfig::paper_default()
            }),
        ] {
            let runs: Vec<SimulatedRun> = modes
                .iter()
                .map(|m| simulate_infomap_mode(&g, &icfg, &mcfg, device, m))
                .collect();
            assert_runs_bitwise(&runs[0], &runs[1]);
            assert_runs_bitwise(&runs[0], &runs[2]);
            // Batched and pipelined recorded the same event stream.
            assert_eq!(runs[0].events, 0, "inline records no trace events");
            assert!(runs[1].events > 0);
            assert_eq!(runs[1].events, runs[2].events);
        }
    }

    #[test]
    fn baseline_and_asa_agree_on_the_answer() {
        let g = small_graph();
        let icfg = InfomapConfig::default();
        let mcfg = MachineConfig::baseline(2);
        let base = simulate_infomap(&g, &icfg, &mcfg, Device::SoftwareHash);
        let asa = simulate_infomap(&g, &icfg, &mcfg, Device::Asa(AsaConfig::paper_default()));
        // The accelerator changes cost, not semantics.
        assert_eq!(base.partition.labels(), asa.partition.labels());
        assert!((base.codelength - asa.codelength).abs() < 1e-9);
    }

    #[test]
    fn asa_is_faster_on_hash_work() {
        let g = small_graph();
        let icfg = InfomapConfig::default();
        let mcfg = MachineConfig::baseline(1);
        let base = simulate_infomap(&g, &icfg, &mcfg, Device::SoftwareHash);
        let asa = simulate_infomap(&g, &icfg, &mcfg, Device::Asa(AsaConfig::paper_default()));
        assert!(
            base.hash_seconds() > 2.0 * asa.hash_seconds(),
            "expected a clear hash speedup: baseline {} vs asa {}",
            base.hash_seconds(),
            asa.hash_seconds()
        );
        assert!(base.total.instructions > asa.total.instructions);
        assert!(base.total.mispredictions > asa.total.mispredictions);
    }

    #[test]
    fn baseline_hash_share_in_paper_band() {
        let g = small_graph();
        let base = simulate_infomap(
            &g,
            &InfomapConfig::default(),
            &MachineConfig::baseline(1),
            Device::SoftwareHash,
        );
        let share = base.hash_share();
        // Paper: 50-65% of FindBestCommunity. Allow a generous band for the
        // small test graph.
        assert!(
            (0.3..0.9).contains(&share),
            "hash share {share} out of plausible range"
        );
    }

    #[test]
    fn sweep_reports_cover_cores() {
        let g = small_graph();
        let mcfg = MachineConfig::baseline(4);
        let run = simulate_infomap(&g, &InfomapConfig::default(), &mcfg, Device::SoftwareHash);
        assert!(!run.sweeps.is_empty());
        for s in &run.sweeps {
            assert_eq!(s.per_core.len(), 4);
            let sum_instr: u64 = s.per_core.iter().map(|r| r.instructions).sum();
            assert_eq!(sum_instr, s.combined.instructions);
            let max_cycles = s.per_core.iter().map(|r| r.cycles).fold(0.0f64, f64::max);
            assert!((s.combined.cycles - max_cycles).abs() < 1e-9);
        }
    }

    #[test]
    fn tiny_cam_overflows_and_still_correct() {
        let g = small_graph();
        let icfg = InfomapConfig::default();
        let mcfg = MachineConfig::baseline(1);
        let tiny = simulate_infomap(
            &g,
            &icfg,
            &mcfg,
            Device::Asa(AsaConfig {
                cam_bytes: 64,
                entry_bytes: 16,
                ..AsaConfig::paper_default()
            }),
        );
        let base = simulate_infomap(&g, &icfg, &mcfg, Device::SoftwareHash);
        assert_eq!(tiny.partition.labels(), base.partition.labels());
        let stats = tiny.asa_stats.unwrap();
        assert!(stats.evictions > 0, "4-entry CAM must overflow");
        assert!(tiny.overflow_share() > 0.0);
    }

    #[test]
    fn linear_probe_agrees_and_asa_beats_both() {
        let g = small_graph();
        let icfg = InfomapConfig::default();
        let mcfg = MachineConfig::baseline(1);
        let base = simulate_infomap(&g, &icfg, &mcfg, Device::SoftwareHash);
        let probe = simulate_infomap(&g, &icfg, &mcfg, Device::LinearProbe);
        let asa = simulate_infomap(&g, &icfg, &mcfg, Device::Asa(AsaConfig::paper_default()));
        assert_eq!(probe.partition.labels(), base.partition.labels());
        // ASA beats both software tables; the probe-vs-chained ordering
        // depends on per-vertex table sizes and is examined by the ablation
        // bench rather than asserted here.
        assert!(asa.total.cycles < probe.total.cycles);
        assert!(asa.total.cycles < base.total.cycles);
        // The probe table avoids pointer chasing, so it must miss the
        // caches less per load than the chained table... but both emit the
        // same *kernel* compute; at minimum the partitions agree.
        assert!(probe.total.instructions > 0);
    }
}
