//! Equivalence: the three sweep-kernel execution paths are interchangeable.
//!
//! The hash path ([`asa_infomap::local_move::FastAccumulator`], the
//! paper's Algorithm 1 reference), the scalar dual-SPA path, and the
//! vectorized/dispatched dual-SPA path (AVX2 when built with
//! `--features simd` on a capable CPU; the portable loops otherwise) must
//! produce identical partitions and 0-ULP codelengths on every network —
//! the fast paths are pure perf substitutions.
//!
//! Random weighted graphs, symmetric (undirected) and asymmetric
//! (directed), run under degraded configurations too: recorded
//! teleportation, single outer loop, tiny sweep budgets, and every
//! [`VertexOrder`]. CI runs this suite at `RAYON_NUM_THREADS=1` and `8`,
//! with and without `--features simd`, and under `ASA_FORCE_SCALAR=1`.
//!
//! The force-scalar toggle is a process-global; flipping it concurrently
//! with another test only changes which kernel executes, never the
//! result — which is exactly the property under test.

use asa_graph::{CsrGraph, GraphBuilder};
use asa_infomap::config::{AccumulatorKind, VertexOrder};
use asa_infomap::{detect_communities, kernel, InfomapConfig};
use proptest::prelude::*;

/// Builds a graph from raw proptest edge triples, dropping self-loops.
/// Node count is fixed so dangling vertices (no sampled edges) appear too.
fn build_graph(edges: &[(u32, u32, u32)], nodes: u32, directed: bool) -> CsrGraph {
    let mut b = if directed {
        GraphBuilder::directed(nodes as usize)
    } else {
        GraphBuilder::undirected(nodes as usize)
    };
    for &(u, v, w) in edges {
        let (u, v) = (u % nodes, v % nodes);
        if u != v {
            b.add_edge(u, v, f64::from(w) * 0.25);
        }
    }
    b.build()
}

/// The restored force-scalar state: what `ASA_FORCE_SCALAR` asked for.
fn env_force_scalar() -> bool {
    std::env::var(kernel::FORCE_SCALAR_ENV)
        .map(|v| v != "0" && !v.is_empty())
        .unwrap_or(false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // hash == scalar SPA == dispatched SPA: identical partitions,
    // codelengths equal to the bit.
    #[test]
    fn three_paths_bit_identical(
        edges in prop::collection::vec((0u32..90, 0u32..90, 1u32..6), 60..400),
        nodes in 30u32..90,
        directed in any::<bool>(),
        recorded in any::<bool>(),
        outer in 1usize..3,
        max_sweeps in prop::sample::select(vec![2usize, 5, 20]),
        order in prop::sample::select(vec![
            VertexOrder::Input,
            VertexOrder::DegreeDesc,
            VertexOrder::Blocked,
        ]),
    ) {
        let graph = build_graph(&edges, nodes, directed);
        let base = InfomapConfig {
            recorded_teleport: recorded,
            outer_loops: outer,
            max_sweeps,
            vertex_order: order,
            ..InfomapConfig::default()
        };
        let hash = detect_communities(&graph, &InfomapConfig {
            accumulator: AccumulatorKind::Hash,
            ..base.clone()
        });
        let spa_cfg = InfomapConfig {
            accumulator: AccumulatorKind::Spa,
            ..base
        };
        let spa = detect_communities(&graph, &spa_cfg);
        prop_assert_eq!(hash.partition.labels(), spa.partition.labels());
        prop_assert_eq!(hash.codelength.to_bits(), spa.codelength.to_bits());

        // Forced-scalar SPA (the portable kernel, even when the binary
        // carries the AVX2 path) agrees with whatever the dispatcher chose.
        kernel::set_force_scalar(true);
        let scalar = detect_communities(&graph, &spa_cfg);
        kernel::set_force_scalar(env_force_scalar());
        prop_assert_eq!(scalar.partition.labels(), spa.partition.labels());
        prop_assert_eq!(scalar.codelength.to_bits(), spa.codelength.to_bits());
    }

    // Sweep order is semantically free: every `VertexOrder` yields the
    // bit-identical result (decisions are made against a frozen snapshot
    // and re-sorted by vertex id before application).
    #[test]
    fn vertex_order_is_semantically_free(
        edges in prop::collection::vec((0u32..120, 0u32..120, 1u32..4), 80..500),
        nodes in 40u32..120,
        directed in any::<bool>(),
    ) {
        let graph = build_graph(&edges, nodes, directed);
        let run = |order: VertexOrder| {
            detect_communities(&graph, &InfomapConfig {
                accumulator: AccumulatorKind::Spa,
                vertex_order: order,
                ..InfomapConfig::default()
            })
        };
        let input = run(VertexOrder::Input);
        for order in [VertexOrder::DegreeDesc, VertexOrder::Blocked] {
            let other = run(order);
            prop_assert_eq!(input.partition.labels(), other.partition.labels());
            prop_assert_eq!(input.codelength.to_bits(), other.codelength.to_bits());
        }
    }

    // The degree-ordered renumbering entry point returns a partition of
    // the original ids whose codelength matches a direct run on the
    // renumbered graph (mapping back relabels vertices, not modules).
    #[test]
    fn renumbered_detection_is_consistent(
        edges in prop::collection::vec((0u32..70, 0u32..70, 1u32..4), 50..300),
        nodes in 25u32..70,
        directed in any::<bool>(),
    ) {
        let graph = build_graph(&edges, nodes, directed);
        let cfg = InfomapConfig::default();
        let via_entry = asa_infomap::detect_communities_renumbered(&graph, &cfg);
        let perm = asa_graph::degree_order(&graph);
        let renumbered = asa_graph::renumber(&graph, &perm);
        let direct = detect_communities(&renumbered, &cfg);
        prop_assert_eq!(via_entry.codelength.to_bits(), direct.codelength.to_bits());
        prop_assert_eq!(via_entry.partition.len(), graph.num_nodes());
        for u in 0..graph.num_nodes() as u32 {
            prop_assert_eq!(
                via_entry.partition.community_of(u) ==
                    via_entry.partition.community_of((u + 1) % nodes),
                direct.partition.community_of(perm.apply(u)) ==
                    direct.partition.community_of(perm.apply((u + 1) % nodes))
            );
        }
    }
}
