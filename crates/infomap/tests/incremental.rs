//! Quality-equivalence properties of the incremental Infomap path
//! (`asa_infomap::incremental`) against fresh full runs.
//!
//! Three contracts from the dynamic-graph subsystem:
//!
//! * **Drift budget** — applying a delta and re-optimizing incrementally
//!   yields a codelength within the configured drift budget of a fresh
//!   multilevel run on the merged graph; when the quality guard fell
//!   back instead, the result is bit-identical to that fresh run (same
//!   flow network, same deterministic schedule).
//! * **Empty delta** — a no-op: identical partition, codelength, and
//!   chain head.
//! * **Chain reversibility** — deleting then reinserting the same arcs
//!   (or vice versa) restores the base fingerprint chain head, because
//!   the chain hashes the *net* overlay content.
//!
//! CI runs this suite at `RAYON_NUM_THREADS=1` and `8` and under
//! `ASA_FORCE_SCALAR=1`.

use std::collections::BTreeSet;
use std::sync::Arc;

use asa_graph::delta::EdgeDelta;
use asa_graph::generators::{planted_partition, PlantedConfig};
use asa_graph::CsrGraph;
use asa_infomap::incremental::{IncrementalConfig, IncrementalState};
use asa_infomap::{detect_communities, CancelToken, InfomapConfig};
use asa_obs::Obs;
use proptest::prelude::*;

/// 150 vertices in five strongly planted communities.
fn planted(seed: u64) -> Arc<CsrGraph> {
    let (graph, _) = planted_partition(
        &PlantedConfig {
            communities: 5,
            community_size: 30,
            k_in: 10.0,
            k_out: 1.0,
        },
        seed,
    );
    Arc::new(graph)
}

fn seed_state(base: Arc<CsrGraph>) -> IncrementalState {
    IncrementalState::new(
        base,
        InfomapConfig::default(),
        IncrementalConfig::default(),
        &Obs::disabled(),
        &CancelToken::none(),
    )
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // (a) Incremental codelength tracks a fresh run on the merged graph
    // within the drift budget; a guard fallback IS that fresh run.
    #[test]
    fn incremental_tracks_fresh_within_drift_budget(
        seed in 0u64..500,
        inserts in prop::collection::vec((0u32..150, 0u32..150, 1u32..5), 1..8),
        deletes in prop::collection::vec((0u32..150, 0u32..150), 0..4),
    ) {
        let mut st = seed_state(planted(seed));
        let mut d = EdgeDelta::new();
        for &(u, v, w) in &inserts {
            if u != v {
                d.insert(u, v, f64::from(w) * 0.25);
            }
        }
        for &(u, v) in &deletes {
            if u != v {
                d.delete(u, v);
            }
        }
        prop_assume!(!d.is_empty());
        let out = st.apply(&d, &Obs::disabled(), &CancelToken::none());
        let fresh = detect_communities(st.merged(), st.config());
        if out.incremental() {
            let budget = IncrementalConfig::default().drift_budget;
            prop_assert!(
                st.codelength() <= fresh.codelength * (1.0 + budget) + 1e-9,
                "incremental {} exceeds drift budget over fresh {}",
                st.codelength(),
                fresh.codelength,
            );
        } else {
            prop_assert_eq!(st.codelength().to_bits(), fresh.codelength.to_bits());
            prop_assert_eq!(st.partition().labels(), fresh.partition.labels());
        }
    }

    // (b) The empty delta is a strict no-op.
    #[test]
    fn empty_delta_is_a_noop(seed in 0u64..200) {
        let mut st = seed_state(planted(seed));
        let labels = st.partition().labels().to_vec();
        let codelength = st.codelength();
        let head = st.chain_fingerprint();
        let out = st.apply(&EdgeDelta::new(), &Obs::disabled(), &CancelToken::none());
        prop_assert!(out.incremental());
        prop_assert_eq!(out.frontier_size, 0);
        prop_assert_eq!(out.chain_fingerprint, head);
        prop_assert_eq!(out.result.partition.labels(), &labels[..]);
        prop_assert_eq!(st.partition().labels(), &labels[..]);
        prop_assert_eq!(st.codelength().to_bits(), codelength.to_bits());
        prop_assert_eq!(st.chain_fingerprint(), head);
    }

    // (c) Delete-then-reinsert of the same arcs restores the base
    // fingerprint chain head.
    #[test]
    fn delete_then_reinsert_restores_chain_head(
        seed in 0u64..200,
        picks in prop::collection::vec((0u32..150, 0u32..150, 1u32..5), 1..6),
    ) {
        let mut st = seed_state(planted(seed));
        let anchor_head = st.chain_fingerprint();
        prop_assert_eq!(anchor_head, st.graph().base().fingerprint());
        let mut seen = BTreeSet::new();
        let mut forward = EdgeDelta::new();
        let mut reverse = EdgeDelta::new();
        for &(u, v, w) in &picks {
            let (u, v) = (u.min(v), u.max(v));
            if u == v || !seen.insert((u, v)) {
                continue;
            }
            match st.graph().arc_weight(u, v) {
                // Existing arc: delete it, then restore its exact weight.
                Some(w0) => {
                    forward.delete(u, v);
                    reverse.insert(u, v, w0);
                }
                // Absent arc: insert it, then delete it again.
                None => {
                    forward.insert(u, v, f64::from(w) * 0.5);
                    reverse.delete(u, v);
                }
            }
        }
        prop_assume!(!forward.is_empty());
        let moved = st.apply(&forward, &Obs::disabled(), &CancelToken::none());
        prop_assert_ne!(moved.chain_fingerprint, anchor_head);
        let restored = st.apply(&reverse, &Obs::disabled(), &CancelToken::none());
        prop_assert_eq!(restored.chain_fingerprint, anchor_head);
        prop_assert_eq!(st.chain_fingerprint(), anchor_head);
    }
}
