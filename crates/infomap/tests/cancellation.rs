//! Cancellation correctness: a run cancelled after k sweeps returns a
//! valid partition (every node assigned, finite codelength) identical to
//! what the uncancelled run had produced at the same sweep boundary.
//!
//! The check exploits two facts. First, every executed sweep emits exactly
//! one `"sweep"` convergence record (carrying the post-sweep codelength)
//! *before* the cancel token is polled, so a token tripping on its k-th
//! poll yields a run whose record stream is exactly the first k records of
//! the uncancelled run — control flow up to the k-th poll is identical.
//! Second, on interrupt the schedule folds the current level's partial
//! partition onto the original vertices, and coarsening preserves module
//! flows, so the reported codelength describes the returned partition
//! exactly.

use std::sync::Arc;

use asa_graph::{CsrGraph, GraphBuilder};
use asa_infomap::{detect_communities_cancellable, CancelToken, InfomapConfig};
use asa_obs::{Obs, Record, RingHandle, RingSink, Value};

/// Ring of cliques with asymmetric weights: several levels of structure,
/// deterministic under a single thread.
fn test_graph() -> CsrGraph {
    let cliques = 12;
    let size = 5;
    let mut b = GraphBuilder::undirected(cliques * size);
    for c in 0..cliques as u32 {
        let base = c * size as u32;
        for i in 0..size as u32 {
            for j in (i + 1)..size as u32 {
                b.add_edge(base + i, base + j, 1.0 + 0.25 * f64::from(i + j));
            }
        }
        b.add_edge(base, ((c + 1) % cliques as u32) * size as u32, 0.5);
    }
    b.build()
}

fn config() -> InfomapConfig {
    InfomapConfig {
        threads: 1, // deterministic decide order
        outer_loops: 2,
        ..InfomapConfig::default()
    }
}

fn observed() -> (Obs, RingHandle) {
    let obs = Obs::new_enabled();
    let (sink, handle) = RingSink::new(4096);
    obs.add_sink(Box::new(sink));
    (obs, handle)
}

fn sweep_records(handle: &RingHandle) -> Vec<Record> {
    handle
        .records()
        .into_iter()
        .filter(|r| r.kind == "sweep")
        .collect()
}

fn field<'a>(record: &'a Record, name: &str) -> Option<&'a Value> {
    record
        .fields
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

fn f64_field(record: &Record, name: &str) -> f64 {
    match field(record, name) {
        Some(Value::F64(v)) => *v,
        other => panic!("field {name}: expected F64, got {other:?}"),
    }
}

/// The deterministic per-sweep fields — everything except wall-clock
/// (`seconds`) and any engine-specific extras.
fn deterministic_fields(record: &Record) -> Vec<(&'static str, Value)> {
    [
        "outer",
        "level",
        "refine",
        "sweep",
        "active",
        "moves",
        "codelength",
        "dl",
    ]
    .iter()
    .filter_map(|name| record.fields.iter().find(|(k, _)| k == name).cloned())
    .collect()
}

#[test]
fn cancelled_run_truncates_to_exact_sweep_prefix() {
    let graph = test_graph();
    let cfg = config();

    // Reference: the uncancelled run and its per-sweep convergence trace.
    let (obs, ring) = observed();
    let full = detect_communities_cancellable(&graph, &cfg, &obs, &CancelToken::none());
    assert!(!full.interrupted);
    let full_records = sweep_records(&ring);
    let total_sweeps = full_records.len();
    assert!(
        total_sweeps >= 4,
        "test graph must exercise several sweeps, got {total_sweeps}"
    );

    // Cancel at several boundaries, including mid-level, the level/
    // refinement seam neighbourhood, and the very first sweep.
    for k in [1, 2, total_sweeps / 2, total_sweeps - 1] {
        let (obs, ring) = observed();
        let cancel = CancelToken::after_polls(k as u64);
        let result = detect_communities_cancellable(&graph, &cfg, &obs, &cancel);
        let records = sweep_records(&ring);

        assert!(result.interrupted, "k={k}: token must interrupt the run");
        assert_eq!(
            records.len(),
            k,
            "k={k}: a token tripping on poll k stops after exactly k sweeps"
        );
        for (i, (cancelled, reference)) in records.iter().zip(&full_records).enumerate() {
            assert_eq!(
                deterministic_fields(cancelled),
                deterministic_fields(reference),
                "k={k}: sweep {i} must match the uncancelled run"
            );
        }

        // Valid partition: every node assigned, labels dense, finite L.
        assert_eq!(result.partition.len(), graph.num_nodes());
        let num = result.partition.num_communities();
        assert!(num >= 1);
        assert!(result
            .partition
            .labels()
            .iter()
            .all(|&c| (c as usize) < num));
        assert!(result.codelength.is_finite());

        // The returned codelength is the one the uncancelled run reported
        // at that same sweep boundary: the truncation is exact.
        let reference_cl = f64_field(&full_records[k - 1], "codelength");
        assert!(
            (result.codelength - reference_cl).abs() < 1e-9,
            "k={k}: cancelled codelength {} != reference sweep codelength {}",
            result.codelength,
            reference_cl
        );
    }
}

#[test]
fn cancellation_is_deterministic() {
    let graph = test_graph();
    let cfg = config();
    let run = |k: u64| {
        let cancel = CancelToken::after_polls(k);
        detect_communities_cancellable(&graph, &cfg, &Obs::disabled(), &cancel)
    };
    for k in [1, 3, 5] {
        let a = run(k);
        let b = run(k);
        assert_eq!(
            a.partition.labels(),
            b.partition.labels(),
            "k={k}: identical truncated runs must return identical partitions"
        );
        assert_eq!(a.codelength, b.codelength);
    }
}

#[test]
fn none_token_is_byte_identical_to_plain_run() {
    let graph = test_graph();
    let cfg = config();
    let plain = asa_infomap::detect_communities(&graph, &cfg);
    let with_token =
        detect_communities_cancellable(&graph, &cfg, &Obs::disabled(), &CancelToken::none());
    assert!(!with_token.interrupted);
    assert_eq!(plain.partition.labels(), with_token.partition.labels());
    assert_eq!(plain.codelength, with_token.codelength);
}

#[test]
fn pre_cancelled_token_still_yields_valid_partition() {
    let graph = test_graph();
    let cancel = CancelToken::new();
    cancel.cancel();
    let result = detect_communities_cancellable(&graph, &config(), &Obs::disabled(), &cancel);
    // One sweep runs before the first poll; the result is still complete.
    assert!(result.interrupted);
    assert_eq!(result.partition.len(), graph.num_nodes());
    assert!(result.codelength.is_finite());
}

#[test]
fn cancel_from_another_thread_mid_run() {
    // A coarser end-to-end check: cancelling concurrently terminates the
    // run promptly with a complete partition, whatever boundary it hits.
    let graph = Arc::new(test_graph());
    let cancel = CancelToken::new();
    let worker = {
        let graph = Arc::clone(&graph);
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            detect_communities_cancellable(&graph, &config(), &Obs::disabled(), &cancel)
        })
    };
    cancel.cancel();
    let result = worker.join().expect("run must not panic");
    assert_eq!(result.partition.len(), graph.num_nodes());
    assert!(result.codelength.is_finite());
}
