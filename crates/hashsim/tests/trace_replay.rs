//! Batched trace replay of instrumented hash-table sessions.
//!
//! The software accumulators emit the collision-chain branches and
//! pointer-chase loads the simulator exists to model; recording those
//! streams into small trace buffers and replaying them in blocks must
//! charge exactly what inline per-event charging does, bit for bit.

use asa_hashsim::{ChainedAccumulator, LinearProbeAccumulator};
use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::phase;
use asa_simarch::{BatchedCore, CoreModel, EventSink, KernelReport, MachineConfig};

fn assert_bitwise(a: &KernelReport, b: &KernelReport, what: &str) {
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(a.branches, b.branches, "{what}: branches");
    assert_eq!(a.mispredictions, b.mispredictions, "{what}: mispredictions");
    assert_eq!(a.loads, b.loads, "{what}: loads");
    assert_eq!(a.stores, b.stores, "{what}: stores");
    assert_eq!(a.l1_misses, b.l1_misses, "{what}: l1_misses");
    assert_eq!(a.l2_misses, b.l2_misses, "{what}: l2_misses");
    assert_eq!(a.l3_misses, b.l3_misses, "{what}: l3_misses");
    assert_eq!(a.cycles.to_bits(), b.cycles.to_bits(), "{what}: cycles");
}

/// A few hundred accumulation rounds with skewed, colliding keys.
fn drive<A: FlowAccumulator, S: EventSink>(acc: &mut A, sink: &mut S) {
    let mut out = Vec::new();
    let mut x = 0x2545_f491_4f6c_dd1du64;
    for round in 0..300u64 {
        acc.begin(sink);
        for i in 0..(3 + round % 12) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Small key range forces chains/probe clusters.
            acc.accumulate((x % 61) as u32, 0.25 + (i as f64) * 0.125, sink);
        }
        acc.gather(&mut out, sink);
    }
}

fn replay_matches<A: FlowAccumulator, F: Fn() -> A>(make: F, what: &str) {
    let cfg = MachineConfig::baseline(1);
    let mut inline_core = CoreModel::new(&cfg);
    drive(&mut make(), &mut inline_core);

    // 128-event blocks split accumulation rounds mid-chain.
    let mut batched = BatchedCore::new(CoreModel::new(&cfg), 128);
    drive(&mut make(), &mut batched);

    let a = inline_core.take_phase_reports();
    let b = batched.take_phase_reports();
    assert!(
        a[phase::HASH].instructions > 0,
        "{what}: hash work expected"
    );
    for (p, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        assert_bitwise(ra, rb, &format!("{what}: phase {p}"));
    }
}

#[test]
fn chained_table_replay_bit_identical() {
    replay_matches(ChainedAccumulator::new, "chained");
}

#[test]
fn linear_probe_replay_bit_identical() {
    replay_matches(LinearProbeAccumulator::new, "linear-probe");
}
