//! Phase attribution: device work must land in the HASH phase of a timing
//! sink, compute must not — this is what makes the paper's Fig. 2b
//! (hash-ops share of the kernel) measurable.

use asa_hashsim::{ChainedAccumulator, LinearProbeAccumulator};
use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{phase, EventSink, InstrClass};
use asa_simarch::{CoreModel, MachineConfig};

fn drive<A: FlowAccumulator>(acc: &mut A) -> CoreModel {
    let mut core = CoreModel::new(&MachineConfig::baseline(1));
    // Simulated kernel: compute, then device work, then compute again.
    core.instr(InstrClass::Float, 100);
    acc.begin(&mut core);
    for k in 0..200u32 {
        acc.accumulate(k % 37, 1.0, &mut core);
    }
    let mut out = Vec::new();
    acc.gather(&mut out, &mut core);
    core.instr(InstrClass::Alu, 50);
    core
}

#[test]
fn chained_work_lands_in_hash_phase() {
    let mut core = drive(&mut ChainedAccumulator::new());
    let hash = *core.phase_report(phase::HASH);
    let compute = *core.phase_report(phase::COMPUTE);
    assert!(
        hash.instructions > 500,
        "device work missing from HASH phase"
    );
    assert!(
        hash.cycles > compute.cycles,
        "hash must dominate this kernel"
    );
    // The two explicit compute bursts (150 instructions) are attributed to
    // COMPUTE, not to the device.
    assert_eq!(compute.instructions, 150);
    // The device restores the phase on exit.
    core.instr(InstrClass::Alu, 1);
    assert_eq!(core.phase_report(phase::COMPUTE).instructions, 151);
    // Software devices never touch the ASA overflow phase.
    assert_eq!(core.phase_report(phase::OVERFLOW).instructions, 0);
}

#[test]
fn probe_work_lands_in_hash_phase() {
    let core = drive(&mut LinearProbeAccumulator::new());
    assert!(core.phase_report(phase::HASH).instructions > 300);
    assert_eq!(core.phase_report(phase::COMPUTE).instructions, 150);
    assert_eq!(core.phase_report(phase::OVERFLOW).instructions, 0);
}

#[test]
fn asa_overflow_lands_in_overflow_phase() {
    use asa_accel::{AsaAccumulator, AsaConfig};
    let mut acc = AsaAccumulator::new(AsaConfig {
        cam_bytes: 4 * 16, // 4 entries: guaranteed overflow below
        entry_bytes: 16,
        ..AsaConfig::paper_default()
    });
    let mut core = drive(&mut acc);
    assert!(
        core.phase_report(phase::OVERFLOW).instructions > 0,
        "sort_and_merge must be attributed to the OVERFLOW phase"
    );
    assert!(core.phase_report(phase::HASH).instructions > 0);
    assert_eq!(core.phase_report(phase::COMPUTE).instructions, 150);
    let _ = &mut core;
}
