//! Chained hash table structurally modelling `std::unordered_map`.

use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{phase, EventSink, InstrClass};

use crate::{hash_key, sites};

const NIL: u32 = u32::MAX;
/// Fresh `unordered_map`s start small; libstdc++ picks 13 buckets, we use
/// the nearest power of two.
const INITIAL_BUCKETS: usize = 16;

/// Synthetic address-space layout. Bucket array and node heap live in
/// distinct regions so the cache model sees the same two access streams the
/// real container generates.
const BUCKET_BASE: u64 = 0x1000_0000;
const NODE_BASE: u64 = 0x2000_0000;
/// libstdc++ `_Hash_node` for a `<int, double>` pair: next pointer (8) +
/// cached hash (8) + pair (16).
const NODE_BYTES: u64 = 32;
/// Bucket slot: one head pointer.
const BUCKET_BYTES: u64 = 8;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u32,
    next: u32,
    value: f64,
    /// Heap slot, assigned at first allocation and stable under rehash
    /// (nodes are relinked, not moved — exactly unordered_map's behaviour).
    slot: u32,
}

/// Instrumented chained hash accumulator (the Baseline device).
///
/// Semantics: a `u32 → f64` sum map. Costs: every operation emits the
/// micro-events of the equivalent `std::unordered_map` code path —
/// hashing, bucket-head load, data-dependent chain walk with per-node
/// compare branches and pointer-chase loads, node allocation, and
/// load-factor-driven rehashes.
#[derive(Debug)]
pub struct ChainedAccumulator {
    buckets: Vec<u32>,
    nodes: Vec<Node>,
    mask: u64,
    /// Monotone heap-slot counter: models malloc returning fresh
    /// allocations per vertex round, so chain neighbours sit on different
    /// cache lines.
    next_slot: u32,
    /// Chain-walk length distribution (nodes visited per accumulate),
    /// shared by all accumulators of a run when telemetry is attached.
    chain_len: Option<asa_obs::Hist>,
}

impl Default for ChainedAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainedAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            buckets: vec![NIL; INITIAL_BUCKETS],
            nodes: Vec::new(),
            mask: (INITIAL_BUCKETS - 1) as u64,
            next_slot: 0,
            chain_len: None,
        }
    }

    /// Attaches the `hashsim.chain_len` histogram (nodes visited per
    /// accumulate). A disabled `obs` leaves the accumulator untouched;
    /// event charging never changes either way.
    pub fn attach_obs(&mut self, obs: &asa_obs::Obs) {
        self.chain_len = obs.enabled().then(|| obs.hist("hashsim.chain_len"));
    }

    /// Current number of stored keys.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current bucket count (grows by rehashing).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_addr(&self, bucket: u64) -> u64 {
        BUCKET_BASE + bucket * BUCKET_BYTES
    }

    #[inline]
    fn node_addr(&self, node: &Node) -> u64 {
        NODE_BASE + node.slot as u64 * NODE_BYTES
    }

    fn rehash<S: EventSink>(&mut self, sink: &mut S) {
        let new_count = self.buckets.len() * 2;
        self.buckets.clear();
        self.buckets.resize(new_count, NIL);
        self.mask = (new_count - 1) as u64;

        // Cost: allocate the new bucket array and relink every node —
        // rehash recomputes each node's bucket and writes two pointers.
        sink.instr(InstrClass::Alu, 8); // allocate + bookkeeping
        for i in 0..self.nodes.len() {
            let key = self.nodes[i].key;
            let bucket = hash_key(key) & self.mask;
            sink.instr(InstrClass::Alu, 3); // hash + mask
            sink.set_dependent(true);
            sink.mem_read(NODE_BASE + self.nodes[i].slot as u64 * NODE_BYTES);
            sink.set_dependent(false);
            sink.mem_write(self.bucket_addr(bucket));
            let head = self.buckets[bucket as usize];
            self.nodes[i].next = head;
            self.buckets[bucket as usize] = i as u32;
        }
    }
}

impl FlowAccumulator for ChainedAccumulator {
    fn begin<S: EventSink>(&mut self, sink: &mut S) {
        sink.set_phase(phase::HASH);
        // Algorithm 1 constructs fresh maps per vertex. Destruction frees
        // every node (allocator fast-path, one op per node); construction
        // grabs a cached small bucket array and zeroes it (one line).
        if !self.nodes.is_empty() {
            sink.instr(InstrClass::Alu, self.nodes.len() as u64); // frees
        }
        sink.instr(InstrClass::Alu, 4); // construct + bookkeeping
        self.nodes.clear();
        self.buckets.clear();
        self.buckets.resize(INITIAL_BUCKETS, NIL);
        self.mask = (INITIAL_BUCKETS - 1) as u64;
        sink.mem_write(BUCKET_BASE);
        sink.set_phase(phase::COMPUTE);
    }

    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, sink: &mut S) {
        sink.set_phase(phase::HASH);
        // Hash + bucket index: multiply, shift, mask (libstdc++'s modulo by
        // a prime costs more; we charge a small fixed ALU budget).
        sink.instr(InstrClass::Alu, 3);
        let bucket = hash_key(key) & self.mask;
        sink.mem_read(self.bucket_addr(bucket));

        // Chain walk: every iteration is a "more nodes?" branch; each node
        // visit is a dependent load plus a key-compare branch. This is the
        // code the paper blames for Baseline's mispredictions.
        let mut cursor = self.buckets[bucket as usize];
        let mut walked = 0u64;
        sink.set_dependent(true);
        loop {
            sink.branch(sites::CHAIN_CONTINUE, cursor != NIL);
            if cursor == NIL {
                break;
            }
            let node = self.nodes[cursor as usize];
            sink.mem_read(self.node_addr(&node));
            sink.instr(InstrClass::Alu, 1);
            walked += 1;
            let matched = node.key == key;
            sink.branch(sites::KEY_MATCH, matched);
            if matched {
                sink.set_dependent(false);
                // Accumulate in place: FP add + store back.
                sink.instr(InstrClass::Float, 1);
                sink.mem_write(self.node_addr(&node));
                self.nodes[cursor as usize].value += value;
                if let Some(h) = &self.chain_len {
                    h.record(walked);
                }
                sink.set_phase(phase::COMPUTE);
                return;
            }
            cursor = node.next;
        }
        sink.set_dependent(false);
        if let Some(h) = &self.chain_len {
            h.record(walked);
        }

        // Miss: insert a new node at the chain head.
        // Rehash check (branch) happens on every insert.
        let needs_rehash = self.nodes.len() + 1 > self.buckets.len();
        sink.branch(sites::REHASH, needs_rehash);
        if needs_rehash {
            self.rehash(sink);
        }
        let bucket = hash_key(key) & self.mask;

        // malloc fast path + node init (key, value, hash cache) + head link.
        sink.instr(InstrClass::Alu, 8);
        let slot = self.next_slot;
        self.next_slot = self.next_slot.wrapping_add(1);
        let node = Node {
            key,
            next: self.buckets[bucket as usize],
            value,
            slot,
        };
        sink.mem_write(self.node_addr(&node)); // initialize node
        sink.mem_write(self.bucket_addr(bucket)); // update head pointer
        self.buckets[bucket as usize] = self.nodes.len() as u32;
        self.nodes.push(node);
        sink.set_phase(phase::COMPUTE);
    }

    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, sink: &mut S) {
        sink.set_phase(phase::HASH);
        out.clear();
        out.reserve(self.nodes.len());
        // unordered_map iteration follows the node list: one dependent load
        // per node, plus copying the pair out.
        sink.set_dependent(true);
        for node in &self.nodes {
            sink.mem_read(self.node_addr(node));
            sink.instr(InstrClass::Alu, 1);
            sink.mem_write(0x3000_0000 + out.len() as u64 * 16);
            out.push((node.key, node.value));
        }
        sink.set_dependent(false);
        self.nodes.clear();
        // Bucket reset handled by the next begin(); keep table consistent.
        self.buckets.clear();
        self.buckets.resize(INITIAL_BUCKETS, NIL);
        self.mask = (INITIAL_BUCKETS - 1) as u64;
        sink.set_phase(phase::COMPUTE);
    }

    fn name(&self) -> &'static str {
        "software-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_simarch::accum::OracleAccumulator;
    use asa_simarch::events::{CountingSink, NullSink};

    fn drain<A: FlowAccumulator>(acc: &mut A) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        acc.gather(&mut out, &mut NullSink);
        out.sort_by_key(|&(k, _)| k);
        out
    }

    #[test]
    fn accumulates_like_oracle() {
        let stream: Vec<(u32, f64)> = vec![
            (5, 1.0),
            (9, 0.5),
            (5, 2.0),
            (1, 0.25),
            (9, 0.5),
            (1, 1.0),
            (7, 3.0),
        ];
        let mut chained = ChainedAccumulator::new();
        let mut oracle = OracleAccumulator::default();
        let mut sink = NullSink;
        chained.begin(&mut sink);
        oracle.begin(&mut sink);
        for &(k, v) in &stream {
            chained.accumulate(k, v, &mut sink);
            oracle.accumulate(k, v, &mut sink);
        }
        assert_eq!(drain(&mut chained), drain(&mut oracle));
    }

    #[test]
    fn rehash_preserves_contents() {
        let mut acc = ChainedAccumulator::new();
        let mut sink = NullSink;
        acc.begin(&mut sink);
        // Insert far more keys than INITIAL_BUCKETS to force several rehashes.
        for k in 0..1000u32 {
            acc.accumulate(k, k as f64, &mut sink);
        }
        assert!(acc.bucket_count() >= 1024);
        let out = drain(&mut acc);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().all(|&(k, v)| v == k as f64));
    }

    #[test]
    fn emits_chain_walk_events() {
        let mut acc = ChainedAccumulator::new();
        let mut sink = CountingSink::default();
        acc.begin(&mut sink);
        acc.accumulate(1, 1.0, &mut sink);
        let after_insert = sink.branches;
        // Second accumulate of the same key: chain-continue (taken) +
        // key-match (taken) branches, no rehash branch.
        acc.accumulate(1, 1.0, &mut sink);
        assert_eq!(sink.branches - after_insert, 2);
        assert_eq!(sink.instr[InstrClass::Float.index()], 1);
    }

    #[test]
    fn collision_chains_walk_longer() {
        // Dense keys spread well; craft colliding keys by brute force.
        let mask = (INITIAL_BUCKETS - 1) as u64;
        let target = hash_key(0) & mask;
        let colliders: Vec<u32> = (0..10_000u32)
            .filter(|&k| hash_key(k) & mask == target)
            .take(8)
            .collect();
        assert!(colliders.len() >= 4, "need colliding keys for the test");

        let mut acc = ChainedAccumulator::new();
        let mut sink = CountingSink::default();
        acc.begin(&mut sink);
        for &k in &colliders {
            acc.accumulate(k, 1.0, &mut sink);
        }
        let reads_before = sink.reads;
        // Looking up the *last* inserted key is cheap (chain head);
        // the first inserted key requires walking the whole chain.
        acc.accumulate(colliders[0], 1.0, &mut sink);
        let deep_walk = sink.reads - reads_before;
        assert!(
            deep_walk as usize >= colliders.len(),
            "expected a full chain walk, saw {deep_walk} reads"
        );
    }

    #[test]
    fn begin_resets_between_vertices() {
        let mut acc = ChainedAccumulator::new();
        let mut sink = NullSink;
        acc.begin(&mut sink);
        acc.accumulate(1, 1.0, &mut sink);
        acc.begin(&mut sink);
        assert!(acc.is_empty());
        acc.accumulate(2, 5.0, &mut sink);
        assert_eq!(drain(&mut acc), vec![(2, 5.0)]);
    }

    #[test]
    fn gather_resets() {
        let mut acc = ChainedAccumulator::new();
        let mut sink = NullSink;
        acc.begin(&mut sink);
        acc.accumulate(3, 1.5, &mut sink);
        assert_eq!(drain(&mut acc), vec![(3, 1.5)]);
        assert_eq!(drain(&mut acc), vec![]);
    }
}
