//! Instrumented software hash tables — the paper's *Baseline*.
//!
//! Every Infomap implementation the paper surveys stores per-vertex flow in
//! a software hash table (`std::unordered_map` in C++). The paper shows
//! those hash operations consume 50–65% of the dominant
//! `FindBestCommunity` kernel (Fig. 2b) and blames collision chaining and
//! branch misprediction. This crate reproduces that device:
//!
//! * [`ChainedAccumulator`] structurally models libstdc++'s
//!   `unordered_map`: a bucket array of head pointers, heap-allocated
//!   nodes linked into collision chains, load-factor-1 rehashing, and a
//!   fresh (small) table per vertex — every one of those steps emits the
//!   instructions, data-dependent branches, and pointer-chase loads the
//!   real container executes.
//! * [`LinearProbeAccumulator`] is an open-addressing alternative used in
//!   ablation benches: fewer dependent loads, same branchy compare loop.
//!
//! Both implement [`asa_simarch::FlowAccumulator`] and are semantically
//! checked against the oracle accumulator by property tests.

pub mod chained;
pub mod open_addr;

pub use chained::ChainedAccumulator;
pub use open_addr::LinearProbeAccumulator;

/// Branch-site identifiers used by the instrumented tables. Distinct sites
/// get distinct predictor slots, matching distinct static branches in the
/// compiled C++.
pub(crate) mod sites {
    /// `while (node != nullptr)` chain-walk continuation branch.
    pub const CHAIN_CONTINUE: u32 = 0x100;
    /// `if (node->key == key)` comparison inside the chain walk.
    pub const KEY_MATCH: u32 = 0x101;
    /// `if (size > bucket_count)` rehash decision on insert.
    pub const REHASH: u32 = 0x102;
    /// Probe-slot state check in the open-addressing table.
    pub const PROBE_OCCUPIED: u32 = 0x110;
    /// Key comparison in the open-addressing probe loop.
    pub const PROBE_MATCH: u32 = 0x111;
}

/// Multiply-shift hash used by both tables (and charged as ALU work where
/// they emit events). Deterministic across platforms.
#[inline]
pub(crate) fn hash_key(key: u32) -> u64 {
    (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_spreads_consecutive_keys() {
        // Consecutive module ids must land in different buckets for any
        // power-of-two table size >= 16.
        let mask = 15u64;
        let buckets: std::collections::HashSet<u64> =
            (0..16u32).map(|k| hash_key(k) & mask).collect();
        assert!(
            buckets.len() >= 8,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}
