//! Open-addressing (linear probing) accumulator.
//!
//! An ablation point between the chained Baseline and ASA: open addressing
//! removes pointer chasing (probes are sequential array loads the prefetcher
//! can follow) but keeps the data-dependent compare branches. The ablation
//! bench uses it to separate how much of ASA's win comes from eliminating
//! memory irregularity versus eliminating branches.

use asa_simarch::accum::FlowAccumulator;
use asa_simarch::events::{phase, EventSink, InstrClass};

use crate::{hash_key, sites};

const INITIAL_SLOTS: usize = 16;
const TABLE_BASE: u64 = 0x4000_0000;
/// Slot: key (4) + epoch (4) + value (8).
const SLOT_BYTES: u64 = 16;
const EMPTY_EPOCH: u32 = 0;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u32,
    epoch: u32,
    value: f64,
}

/// Instrumented linear-probing hash accumulator.
///
/// Clearing is O(1) via epoch stamping (slots from older epochs read as
/// empty), so per-vertex construction cost does not scale with table size —
/// a deliberate advantage over the per-vertex `unordered_map` construction
/// that the chained model pays.
#[derive(Debug)]
pub struct LinearProbeAccumulator {
    slots: Vec<Slot>,
    mask: u64,
    len: usize,
    epoch: u32,
    /// Probe-sequence length distribution (slots inspected per
    /// accumulate), shared across a run's accumulators when attached.
    probe_len: Option<asa_obs::Hist>,
}

impl Default for LinearProbeAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl LinearProbeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            slots: vec![
                Slot {
                    key: 0,
                    epoch: EMPTY_EPOCH,
                    value: 0.0
                };
                INITIAL_SLOTS
            ],
            mask: (INITIAL_SLOTS - 1) as u64,
            len: 0,
            epoch: 1,
            probe_len: None,
        }
    }

    /// Attaches the `hashsim.probe_len` histogram (slots inspected per
    /// accumulate; a grow restarts the count like the probe sequence
    /// itself). A disabled `obs` leaves the accumulator untouched.
    pub fn attach_obs(&mut self, obs: &asa_obs::Obs) {
        self.probe_len = obs.enabled().then(|| obs.hist("hashsim.probe_len"));
    }

    /// Stored key count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn addr(&self, idx: u64) -> u64 {
        TABLE_BASE + idx * SLOT_BYTES
    }

    fn grow<S: EventSink>(&mut self, sink: &mut S) {
        let old: Vec<Slot> = std::mem::take(&mut self.slots);
        let new_cap = old.len() * 2;
        self.slots = vec![
            Slot {
                key: 0,
                epoch: EMPTY_EPOCH,
                value: 0.0
            };
            new_cap
        ];
        self.mask = (new_cap - 1) as u64;
        sink.instr(InstrClass::Alu, 8);
        // Re-insert live slots: sequential reads of the old table (stream,
        // not dependent) and writes to the new one.
        let epoch = self.epoch;
        for (i, slot) in old.iter().enumerate() {
            sink.mem_read(self.addr(i as u64));
            sink.branch(sites::PROBE_OCCUPIED, slot.epoch == epoch);
            if slot.epoch == epoch {
                let mut idx = hash_key(slot.key) & self.mask;
                sink.instr(InstrClass::Alu, 3);
                while self.slots[idx as usize].epoch == epoch {
                    idx = (idx + 1) & self.mask;
                    sink.instr(InstrClass::Alu, 1);
                }
                self.slots[idx as usize] = *slot;
                sink.mem_write(self.addr(idx));
            }
        }
    }
}

impl FlowAccumulator for LinearProbeAccumulator {
    fn begin<S: EventSink>(&mut self, sink: &mut S) {
        sink.set_phase(phase::HASH);
        // Epoch bump: constant-time clear.
        sink.instr(InstrClass::Alu, 2);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == EMPTY_EPOCH {
            // Epoch wrapped: physically clear once every 2^32 rounds.
            for s in &mut self.slots {
                s.epoch = EMPTY_EPOCH;
            }
            self.epoch = 1;
        }
        self.len = 0;
        sink.set_phase(phase::COMPUTE);
    }

    fn accumulate<S: EventSink>(&mut self, key: u32, value: f64, sink: &mut S) {
        sink.set_phase(phase::HASH);
        self.accumulate_inner(key, value, sink);
        sink.set_phase(phase::COMPUTE);
    }

    fn gather<S: EventSink>(&mut self, out: &mut Vec<(u32, f64)>, sink: &mut S) {
        sink.set_phase(phase::HASH);
        out.clear();
        out.reserve(self.len);
        // Sequential sweep of the table: prefetch-friendly independent loads.
        for (i, slot) in self.slots.iter().enumerate() {
            sink.mem_read(self.addr(i as u64));
            let live = slot.epoch == self.epoch;
            sink.branch(sites::PROBE_OCCUPIED, live);
            if live {
                sink.mem_write(0x5000_0000 + out.len() as u64 * 16);
                out.push((slot.key, slot.value));
            }
        }
        self.epoch = self.epoch.wrapping_add(1);
        self.len = 0;
        sink.set_phase(phase::COMPUTE);
    }

    fn name(&self) -> &'static str {
        "linear-probe"
    }
}

impl LinearProbeAccumulator {
    fn accumulate_inner<S: EventSink>(&mut self, key: u32, value: f64, sink: &mut S) {
        sink.instr(InstrClass::Alu, 3); // hash + mask
        let mut idx = hash_key(key) & self.mask;
        let mut probed = 0u64;
        loop {
            sink.mem_read(self.addr(idx)); // sequential probes: independent
            probed += 1;
            let slot = self.slots[idx as usize];
            let occupied = slot.epoch == self.epoch;
            sink.branch(sites::PROBE_OCCUPIED, occupied);
            if !occupied {
                // Insert here; grow first when load factor would hit 0.7.
                let needs_grow = (self.len + 1) * 10 > self.slots.len() * 7;
                sink.branch(sites::REHASH, needs_grow);
                if needs_grow {
                    self.grow(sink);
                    self.accumulate_inner(key, value, sink);
                    return;
                }
                sink.instr(InstrClass::Alu, 3);
                self.slots[idx as usize] = Slot {
                    key,
                    epoch: self.epoch,
                    value,
                };
                sink.mem_write(self.addr(idx));
                self.len += 1;
                if let Some(h) = &self.probe_len {
                    h.record(probed);
                }
                return;
            }
            sink.instr(InstrClass::Alu, 1);
            let matched = slot.key == key;
            sink.branch(sites::PROBE_MATCH, matched);
            if matched {
                sink.instr(InstrClass::Float, 1);
                self.slots[idx as usize].value += value;
                sink.mem_write(self.addr(idx));
                if let Some(h) = &self.probe_len {
                    h.record(probed);
                }
                return;
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_simarch::accum::OracleAccumulator;
    use asa_simarch::events::NullSink;

    fn drain<A: FlowAccumulator>(acc: &mut A) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        acc.gather(&mut out, &mut NullSink);
        out.sort_by_key(|&(k, _)| k);
        out
    }

    #[test]
    fn matches_oracle() {
        let stream: Vec<(u32, f64)> = (0..500)
            .map(|i| ((i * 7 % 40) as u32, 0.5 + (i % 3) as f64))
            .collect();
        let mut probe = LinearProbeAccumulator::new();
        let mut oracle = OracleAccumulator::default();
        let mut sink = NullSink;
        probe.begin(&mut sink);
        oracle.begin(&mut sink);
        for &(k, v) in &stream {
            probe.accumulate(k, v, &mut sink);
            oracle.accumulate(k, v, &mut sink);
        }
        assert_eq!(drain(&mut probe), drain(&mut oracle));
    }

    #[test]
    fn growth_keeps_contents() {
        let mut acc = LinearProbeAccumulator::new();
        let mut sink = NullSink;
        acc.begin(&mut sink);
        for k in 0..200u32 {
            acc.accumulate(k, 1.0, &mut sink);
        }
        assert!(acc.capacity() >= 256);
        assert_eq!(drain(&mut acc).len(), 200);
    }

    #[test]
    fn epoch_clear_is_logical() {
        let mut acc = LinearProbeAccumulator::new();
        let mut sink = NullSink;
        acc.begin(&mut sink);
        acc.accumulate(1, 1.0, &mut sink);
        acc.begin(&mut sink);
        assert!(acc.is_empty());
        assert_eq!(drain(&mut acc), vec![]);
        acc.begin(&mut sink);
        acc.accumulate(1, 2.0, &mut sink);
        assert_eq!(drain(&mut acc), vec![(1, 2.0)]);
    }
}
