//! Baseline community-detection algorithms and partition-quality metrics.
//!
//! The paper motivates Infomap by its quality advantage over
//! modularity-based algorithms on the LFR benchmark (Lancichinetti &
//! Fortunato 2009; Aldecoa & Marín 2013). To reproduce that comparison the
//! harness needs the comparators themselves:
//!
//! * [`mod@louvain`] — the canonical modularity optimizer (Blondel et al.
//!   2008), the paper's reference for the resolution-limit discussion,
//! * [`mod@labelprop`] — asynchronous label propagation, a fast low-quality
//!   baseline,
//! * [`mod@girvan_newman`] — the original divisive edge-betweenness method
//!   (the paper's ref 16), usable on small instances as an independent
//!   third opinion,
//! * [`metrics`] — normalized mutual information, adjusted Rand index, and
//!   modularity for scoring detected partitions against planted ones.

pub mod girvan_newman;
pub mod labelprop;
pub mod louvain;
pub mod metrics;

pub use girvan_newman::{edge_betweenness, girvan_newman, GirvanNewmanResult};
pub use labelprop::label_propagation;
pub use louvain::{louvain, LouvainConfig, LouvainResult};
pub use metrics::{
    adjusted_rand_index, conductance, coverage, modularity, normalized_mutual_information,
};
