//! Girvan–Newman divisive community detection via edge betweenness.
//!
//! The historical root of the field (Girvan & Newman 2002, the paper's
//! ref 16): repeatedly remove the edge with the highest betweenness
//! centrality, tracking the modularity of the resulting component
//! structure, and return the best split seen. O(n·m²) overall — usable
//! only on small networks, which is exactly why the quality benches
//! restrict it to reduced instances; its value here is as an independent
//! third opinion in correctness tests.

use asa_graph::connectivity::connected_components;
use asa_graph::{CsrGraph, GraphBuilder, NodeId, Partition};
use rustc_hash::FxHashMap;

use crate::metrics::modularity;

/// Edge betweenness centrality for all edges of an undirected graph
/// (Brandes' algorithm, unweighted shortest paths). Returns a map from the
/// canonical edge `(min(u,v), max(u,v))` to its centrality.
pub fn edge_betweenness(graph: &CsrGraph) -> FxHashMap<(NodeId, NodeId), f64> {
    let n = graph.num_nodes();
    let mut centrality: FxHashMap<(NodeId, NodeId), f64> = FxHashMap::default();

    // Scratch reused across sources.
    let mut dist = vec![-1i64; n];
    let mut sigma = vec![0f64; n];
    let mut delta = vec![0f64; n];
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];

    for s in 0..n as u32 {
        // BFS from s.
        for v in 0..n {
            dist[v] = -1;
            sigma[v] = 0.0;
            delta[v] = 0.0;
            preds[v].clear();
        }
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut order: Vec<NodeId> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for e in graph.out_neighbors(u).iter() {
                let v = e.target;
                if dist[v as usize] < 0 {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    preds[v as usize].push(u);
                }
            }
        }
        // Dependency accumulation, reverse BFS order.
        for &w in order.iter().rev() {
            for &u in &preds[w as usize] {
                let share = sigma[u as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                delta[u as usize] += share;
                let key = (u.min(w), u.max(w));
                *centrality.entry(key).or_insert(0.0) += share;
            }
        }
    }
    // Each undirected path is counted from both endpoints.
    for v in centrality.values_mut() {
        *v /= 2.0;
    }
    centrality
}

/// Result of a Girvan–Newman run.
#[derive(Debug, Clone)]
pub struct GirvanNewmanResult {
    /// The component partition with the highest modularity encountered.
    pub partition: Partition,
    /// Its modularity.
    pub modularity: f64,
    /// Edges removed before the best split appeared.
    pub removed_edges: usize,
}

/// Runs Girvan–Newman on a small undirected graph, removing up to
/// `max_removals` edges (all of them if `None`).
///
/// # Panics
/// Panics on directed graphs.
pub fn girvan_newman(graph: &CsrGraph, max_removals: Option<usize>) -> GirvanNewmanResult {
    assert!(
        !graph.is_directed(),
        "girvan-newman expects an undirected graph"
    );
    let mut edges: Vec<(NodeId, NodeId, f64)> = graph.arcs().filter(|&(u, v, _)| u <= v).collect();
    let budget = max_removals.unwrap_or(edges.len()).min(edges.len());

    let mut best_partition = connected_components(graph).partition;
    let mut best_q = modularity(graph, &best_partition);
    let mut removed = 0usize;
    let mut best_removed = 0usize;

    for _ in 0..budget {
        // Rebuild the current graph and find the max-betweenness edge.
        let mut b = GraphBuilder::undirected(graph.num_nodes());
        for &(u, v, w) in &edges {
            b.add_edge(u, v, w);
        }
        let current = b.build();
        let centrality = edge_betweenness(&current);
        let Some((&(u, v), _)) = centrality
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        else {
            break;
        };
        edges.retain(|&(a, c, _)| (a.min(c), a.max(c)) != (u, v));
        removed += 1;

        let mut b = GraphBuilder::undirected(graph.num_nodes());
        for &(a, c, w) in &edges {
            b.add_edge(a, c, w);
        }
        let split = connected_components(&b.build()).partition;
        // Modularity is always evaluated on the ORIGINAL graph.
        let q = modularity(graph, &split);
        if q > best_q {
            best_q = q;
            best_partition = split;
            best_removed = removed;
        }
    }

    GirvanNewmanResult {
        partition: best_partition,
        modularity: best_q,
        removed_edges: best_removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::normalized_mutual_information;
    use asa_graph::generators::{planted_partition, PlantedConfig};

    fn two_triangles() -> CsrGraph {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn bridge_has_highest_betweenness() {
        let g = two_triangles();
        let c = edge_betweenness(&g);
        let bridge = c[&(2, 3)];
        for (&e, &v) in c.iter() {
            if e != (2, 3) {
                assert!(bridge > v, "bridge {bridge} must exceed edge {e:?} = {v}");
            }
        }
        // The bridge carries all 9 cross pairs of shortest paths.
        assert!((bridge - 9.0).abs() < 1e-9);
    }

    #[test]
    fn path_graph_betweenness() {
        // 0-1-2: edge (0,1) carries paths {0-1, 0-2} = 2.
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let c = edge_betweenness(&b.build());
        assert!((c[&(0, 1)] - 2.0).abs() < 1e-9);
        assert!((c[&(1, 2)] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn splits_two_triangles() {
        let g = two_triangles();
        let r = girvan_newman(&g, None);
        assert_eq!(r.partition.num_communities(), 2);
        assert_eq!(r.removed_edges, 1, "removing the bridge is optimal");
        assert!(r.modularity > 0.3);
    }

    #[test]
    fn agrees_with_ground_truth_on_tiny_planted_graph() {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 3,
                community_size: 10,
                k_in: 6.0,
                k_out: 0.5,
            },
            5,
        );
        let r = girvan_newman(&g, Some(25));
        let nmi = normalized_mutual_information(&r.partition, &truth);
        assert!(nmi > 0.8, "GN NMI {nmi} too low on an easy instance");
    }
}
