//! Asynchronous label propagation (Raghavan et al. 2007).
//!
//! Each vertex repeatedly adopts the label carried by the plurality weight
//! of its neighbours; convergence yields communities. Fast but fragile —
//! included as the low-quality end of the comparison spectrum in the
//! quality benches.

use asa_graph::{CsrGraph, Partition};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashMap;

/// Runs label propagation for at most `max_sweeps`, visiting vertices in a
/// seeded random order each sweep (the algorithm's usual symmetry breaker).
/// Ties go to the smallest label for determinism given the seed.
pub fn label_propagation(graph: &CsrGraph, max_sweeps: usize, seed: u64) -> Partition {
    let n = graph.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tally: FxHashMap<u32, f64> = FxHashMap::default();

    for _ in 0..max_sweeps {
        order.shuffle(&mut rng);
        let mut changes = 0usize;
        for &u in &order {
            if graph.out_degree(u) == 0 {
                continue;
            }
            tally.clear();
            for e in graph.out_neighbors(u).iter() {
                if e.target != u {
                    *tally.entry(labels[e.target as usize]).or_insert(0.0) += e.weight;
                }
            }
            if tally.is_empty() {
                continue;
            }
            let mut best = (u32::MAX, f64::NEG_INFINITY);
            let mut entries: Vec<(u32, f64)> = tally.iter().map(|(&l, &w)| (l, w)).collect();
            entries.sort_unstable_by_key(|&(l, _)| l);
            for (l, w) in entries {
                if w > best.1 + 1e-15 {
                    best = (l, w);
                }
            }
            if best.0 != labels[u as usize] {
                labels[u as usize] = best.0;
                changes += 1;
            }
        }
        if changes == 0 {
            break;
        }
    }
    Partition::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::generators::{planted_partition, PlantedConfig};
    use asa_graph::GraphBuilder;

    #[test]
    fn separates_disconnected_cliques() {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let p = label_propagation(&b.build(), 20, 1);
        assert_eq!(p.community_of(0), p.community_of(1));
        assert_eq!(p.community_of(0), p.community_of(2));
        assert_eq!(p.community_of(3), p.community_of(4));
        assert_ne!(p.community_of(0), p.community_of(3));
    }

    #[test]
    fn strong_planted_structure_recovered() {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 4,
                community_size: 50,
                k_in: 14.0,
                k_out: 0.5,
            },
            3,
        );
        let p = label_propagation(&g, 30, 7);
        let nmi = crate::metrics::normalized_mutual_information(&p, &truth);
        assert!(nmi > 0.8, "NMI {nmi} too low on an easy instance");
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) = planted_partition(
            &PlantedConfig {
                communities: 3,
                community_size: 30,
                k_in: 8.0,
                k_out: 1.0,
            },
            5,
        );
        let a = label_propagation(&g, 20, 11);
        let b = label_propagation(&g, 20, 11);
        assert_eq!(a.labels(), b.labels());
    }
}
