//! Louvain modularity optimization (Blondel et al. 2008).
//!
//! The standard two-phase loop: greedy local moves maximizing the
//! modularity gain, then aggregation of communities into a weighted coarse
//! graph, repeated until modularity stops improving. Used by the quality
//! benches as the modularity-based comparator the paper contrasts Infomap
//! against (resolution limit, LFR accuracy).

use asa_graph::{CsrGraph, GraphBuilder, NodeId, Partition};
use rustc_hash::FxHashMap;

use crate::metrics::modularity;

/// Louvain parameters.
#[derive(Debug, Clone)]
pub struct LouvainConfig {
    /// Maximum local-move sweeps per level.
    pub max_sweeps: usize,
    /// Maximum aggregation levels.
    pub max_levels: usize,
    /// Minimum modularity gain to keep iterating.
    pub min_gain: f64,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self {
            max_sweeps: 20,
            max_levels: 12,
            min_gain: 1e-9,
        }
    }
}

/// Output of a Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Final community assignment over the original vertices.
    pub partition: Partition,
    /// Final modularity.
    pub modularity: f64,
    /// Number of levels executed.
    pub levels: usize,
}

struct LevelState {
    /// Community of each node.
    labels: Vec<u32>,
    /// Σ of weights strictly inside each community (each undirected edge
    /// counted twice, as both arcs).
    sigma_in: Vec<f64>,
    /// Σ of strengths (weighted degrees) of each community's members.
    sigma_tot: Vec<f64>,
    /// Strength of each node.
    strength: Vec<f64>,
    /// 2W — total arc weight.
    two_w: f64,
}

impl LevelState {
    fn new(graph: &CsrGraph) -> Self {
        let n = graph.num_nodes();
        let strength: Vec<f64> = (0..n as u32).map(|u| graph.out_weight(u)).collect();
        let self_loops: Vec<f64> = (0..n as u32)
            .map(|u| {
                graph
                    .out_neighbors(u)
                    .iter()
                    .filter(|e| e.target == u)
                    .map(|e| e.weight)
                    .sum()
            })
            .collect();
        Self {
            labels: (0..n as u32).collect(),
            sigma_in: self_loops,
            sigma_tot: strength.clone(),
            strength,
            two_w: graph.total_arc_weight(),
        }
    }

    /// Modularity gain of moving `u` (currently isolated from its
    /// community) into community `c`, where `k_u_c` is the weight from `u`
    /// to members of `c`.
    fn gain(&self, u: NodeId, c: u32, k_u_c: f64) -> f64 {
        let k_u = self.strength[u as usize];
        (k_u_c - self.sigma_tot[c as usize] * k_u / self.two_w) / self.two_w
    }
}

fn local_moves(graph: &CsrGraph, cfg: &LouvainConfig) -> (Partition, bool) {
    let n = graph.num_nodes();
    let mut state = LevelState::new(graph);
    let mut improved_any = false;
    let mut neighbor_weights: FxHashMap<u32, f64> = FxHashMap::default();

    for _sweep in 0..cfg.max_sweeps {
        let mut moves = 0usize;
        for u in 0..n as u32 {
            let current = state.labels[u as usize];
            // Weights from u to each neighbouring community (self-loops
            // excluded from the candidate weights).
            neighbor_weights.clear();
            let mut self_loop = 0.0;
            for e in graph.out_neighbors(u).iter() {
                if e.target == u {
                    self_loop += e.weight;
                    continue;
                }
                *neighbor_weights
                    .entry(state.labels[e.target as usize])
                    .or_insert(0.0) += e.weight;
            }
            let k_u = state.strength[u as usize];
            let k_u_cur = neighbor_weights.get(&current).copied().unwrap_or(0.0);

            // Detach u from its community.
            state.sigma_tot[current as usize] -= k_u;
            state.sigma_in[current as usize] -= 2.0 * k_u_cur + self_loop;

            // Best destination (including staying put).
            let mut best = (current, state.gain(u, current, k_u_cur));
            let mut candidates: Vec<(u32, f64)> =
                neighbor_weights.iter().map(|(&c, &w)| (c, w)).collect();
            candidates.sort_unstable_by_key(|&(c, _)| c); // determinism
            for (c, w) in candidates {
                if c == current {
                    continue;
                }
                let g = state.gain(u, c, w);
                if g > best.1 + 1e-15 {
                    best = (c, g);
                }
            }

            // Attach to the winner.
            let target = best.0;
            let k_u_tgt = neighbor_weights.get(&target).copied().unwrap_or(0.0);
            state.sigma_tot[target as usize] += k_u;
            state.sigma_in[target as usize] += 2.0 * k_u_tgt + self_loop;
            state.labels[u as usize] = target;
            if target != current {
                moves += 1;
                improved_any = true;
            }
        }
        if moves == 0 {
            break;
        }
    }
    (Partition::from_labels(state.labels), improved_any)
}

/// Aggregates `graph` by `partition` into a weighted coarse graph with
/// self-loops carrying intra-community weight.
fn aggregate(graph: &CsrGraph, partition: &Partition) -> CsrGraph {
    let m = partition.num_communities();
    let mut acc: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    for (u, v, w) in graph.arcs() {
        let (cu, cv) = (partition.community_of(u), partition.community_of(v));
        // Keep one canonical orientation for undirected arcs so the builder
        // does not double them.
        if cu <= cv {
            *acc.entry((cu, cv)).or_insert(0.0) += w;
        }
    }
    let mut b = GraphBuilder::undirected(m);
    for ((cu, cv), w) in acc {
        // Arc pairs were folded into one orientation; intra-community
        // weight stays halved relative to double-counted arcs for loops.
        let w = if cu == cv { w / 2.0 } else { w };
        b.add_edge(cu, cv, w);
    }
    b.build()
}

/// Runs Louvain on an undirected weighted graph.
///
/// # Panics
/// Panics on directed graphs (classic Louvain is defined for undirected
/// modularity; the harness's comparisons all use undirected stand-ins).
pub fn louvain(graph: &CsrGraph, cfg: &LouvainConfig) -> LouvainResult {
    assert!(
        !graph.is_directed(),
        "louvain baseline expects an undirected graph"
    );
    let mut composed = Partition::singletons(graph.num_nodes());
    let mut current = graph.clone();
    let mut levels = 0usize;
    let mut last_q = modularity(graph, &composed);

    for _ in 0..cfg.max_levels {
        let (partition, improved) = local_moves(&current, cfg);
        if !improved {
            break;
        }
        levels += 1;
        let mut compact = partition.clone();
        compact.compact();
        composed = composed.project(&compact);
        let q = modularity(graph, &composed);
        let merged = compact.num_communities() < current.num_nodes();
        if q - last_q < cfg.min_gain || !merged {
            break;
        }
        last_q = q;
        current = aggregate(&current, &compact);
    }

    LouvainResult {
        modularity: modularity(graph, &composed),
        partition: composed,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::normalized_mutual_information;
    use asa_graph::generators::{planted_partition, PlantedConfig};

    fn two_triangles() -> CsrGraph {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn finds_triangles() {
        let g = two_triangles();
        let r = louvain(&g, &LouvainConfig::default());
        assert_eq!(r.partition.num_communities(), 2);
        assert!(r.modularity > 0.3);
        assert_eq!(r.partition.community_of(0), r.partition.community_of(2));
        assert_ne!(r.partition.community_of(0), r.partition.community_of(3));
    }

    #[test]
    fn recovers_planted_partition() {
        let (g, truth) = planted_partition(
            &PlantedConfig {
                communities: 5,
                community_size: 40,
                k_in: 12.0,
                k_out: 1.0,
            },
            9,
        );
        let r = louvain(&g, &LouvainConfig::default());
        let nmi = normalized_mutual_information(&r.partition, &truth);
        assert!(nmi > 0.9, "NMI {nmi} too low for an easy planted graph");
    }

    #[test]
    fn modularity_never_negative_on_communities() {
        let g = two_triangles();
        let r = louvain(&g, &LouvainConfig::default());
        assert!(r.modularity >= 0.0);
        assert!(r.levels >= 1);
    }

    #[test]
    fn aggregate_conserves_weight() {
        let g = two_triangles();
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1, 1]);
        let coarse = aggregate(&g, &p);
        assert_eq!(coarse.num_nodes(), 2);
        // Total weight conserved: 7 edges of weight 1 => arc weight 14.
        // Coarse: two self-loops of 3 (arc weight 3 each... self-loop arcs
        // count once) + bridge 1 both ways.
        let total_edges: f64 = coarse.total_arc_weight();
        assert!((total_edges - (3.0 + 3.0 + 1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_rejected() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 1, 1.0);
        louvain(&b.build(), &LouvainConfig::default());
    }
}
