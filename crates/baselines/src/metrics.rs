//! Partition-quality metrics.

use asa_graph::{CsrGraph, Partition};

/// Joint contingency counts of two partitions over the same vertex set.
fn contingency(a: &Partition, b: &Partition) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    assert_eq!(a.len(), b.len(), "partitions cover different vertex sets");
    let (ka, kb) = (a.num_communities(), b.num_communities());
    let mut joint = vec![vec![0u64; kb]; ka];
    let mut ca = vec![0u64; ka];
    let mut cb = vec![0u64; kb];
    for u in 0..a.len() as u32 {
        let (i, j) = (a.community_of(u) as usize, b.community_of(u) as usize);
        joint[i][j] += 1;
        ca[i] += 1;
        cb[j] += 1;
    }
    (joint, ca, cb)
}

/// Normalized mutual information between two partitions, in `[0, 1]`
/// (arithmetic-mean normalization, the convention of Lancichinetti &
/// Fortunato's comparative analysis). Returns 1 when both partitions are
/// identical up to relabeling, and 1 by convention when both are trivial
/// (single community or all singletons on both sides with zero entropy).
pub fn normalized_mutual_information(a: &Partition, b: &Partition) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (joint, ca, cb) = contingency(a, b);
    let h = |counts: &[u64]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ca);
    let hb = h(&cb);
    let mut mi = 0.0;
    for (i, row) in joint.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c > 0 {
                let pij = c as f64 / n;
                let pi = ca[i] as f64 / n;
                let pj = cb[j] as f64 / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
    }
    let denom = 0.5 * (ha + hb);
    if denom <= 0.0 {
        // Both partitions carry no information; identical by construction.
        1.0
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index between two partitions: 1 for identical partitions,
/// ~0 for independent ones (can be slightly negative).
pub fn adjusted_rand_index(a: &Partition, b: &Partition) -> f64 {
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let (joint, ca, cb) = contingency(a, b);
    let c2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = joint
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| c2(c))
        .sum();
    let sum_a: f64 = ca.iter().map(|&c| c2(c)).sum();
    let sum_b: f64 = cb.iter().map(|&c| c2(c)).sum();
    let total = c2(n);
    let expected = sum_a * sum_b / total;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < 1e-12 {
        1.0
    } else {
        (sum_ij - expected) / (max - expected)
    }
}

/// Newman modularity `Q` of a partition on a weighted graph:
/// `Q = Σ_c (w_in_c / W − (s_c / 2W)²)` for undirected graphs, with the
/// directed generalization `Q = Σ_c (w_in_c / W − s_out_c·s_in_c / W²)`.
pub fn modularity(graph: &CsrGraph, partition: &Partition) -> f64 {
    assert_eq!(graph.num_nodes(), partition.len());
    let total: f64 = graph.total_arc_weight();
    if total == 0.0 {
        return 0.0;
    }
    let m = partition.num_communities();
    let mut w_in = vec![0.0f64; m];
    let mut s_out = vec![0.0f64; m];
    let mut s_in = vec![0.0f64; m];
    for u in graph.nodes() {
        let cu = partition.community_of(u) as usize;
        s_out[cu] += graph.out_weight(u);
        s_in[cu] += graph.in_weight(u);
        for e in graph.out_neighbors(u).iter() {
            if partition.community_of(e.target) as usize == cu {
                w_in[cu] += e.weight;
            }
        }
    }
    (0..m)
        .map(|c| w_in[c] / total - (s_out[c] / total) * (s_in[c] / total))
        .sum()
}

/// Coverage: the fraction of edge weight that falls inside communities.
/// 1.0 means no community-crossing edges; the all-in-one partition always
/// scores 1.0, so coverage is only meaningful alongside other metrics.
pub fn coverage(graph: &CsrGraph, partition: &Partition) -> f64 {
    assert_eq!(graph.num_nodes(), partition.len());
    let total = graph.total_arc_weight();
    if total == 0.0 {
        return 1.0;
    }
    let intra: f64 = graph
        .arcs()
        .filter(|&(u, v, _)| partition.community_of(u) == partition.community_of(v))
        .map(|(_, _, w)| w)
        .sum();
    intra / total
}

/// Conductance of each community: `cut(C) / min(vol(C), vol(V∖C))`, where
/// volumes are weighted degrees. Lower is better (0 = no boundary).
/// Communities spanning more than half the volume use the complement's
/// volume, per the standard definition. Empty communities yield 0.
pub fn conductance(graph: &CsrGraph, partition: &Partition) -> Vec<f64> {
    assert_eq!(graph.num_nodes(), partition.len());
    let m = partition.num_communities();
    let mut cut = vec![0.0f64; m];
    let mut vol = vec![0.0f64; m];
    let mut total_vol = 0.0f64;
    for u in graph.nodes() {
        let cu = partition.community_of(u) as usize;
        let s = graph.out_weight(u);
        vol[cu] += s;
        total_vol += s;
        for e in graph.out_neighbors(u).iter() {
            if partition.community_of(e.target) as usize != cu {
                cut[cu] += e.weight;
            }
        }
    }
    (0..m)
        .map(|c| {
            let denom = vol[c].min(total_vol - vol[c]);
            if denom <= 0.0 {
                0.0
            } else {
                cut[c] / denom
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asa_graph::GraphBuilder;

    fn p(labels: &[u32]) -> Partition {
        Partition::from_labels(labels.to_vec())
    }

    #[test]
    fn nmi_identical_is_one() {
        let a = p(&[0, 0, 1, 1, 2]);
        let b = p(&[5, 5, 9, 9, 1]); // same structure, different labels
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_independent_is_low() {
        // a splits first/second half; b splits even/odd — independent-ish.
        let a = p(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let b = p(&[0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(normalized_mutual_information(&a, &b) < 0.05);
    }

    #[test]
    fn nmi_symmetric() {
        let a = p(&[0, 0, 1, 1, 2, 2]);
        let b = p(&[0, 1, 1, 1, 2, 2]);
        let ab = normalized_mutual_information(&a, &b);
        let ba = normalized_mutual_information(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn ari_identical_and_independent() {
        let a = p(&[0, 0, 1, 1]);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        let b = p(&[0, 1, 0, 1]);
        assert!(adjusted_rand_index(&a, &b) < 0.1);
    }

    #[test]
    fn modularity_of_two_cliques() {
        // Two triangles, one bridge.
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        let g = b.build();
        let good = p(&[0, 0, 0, 1, 1, 1]);
        let bad = p(&[0, 1, 0, 1, 0, 1]);
        let q_good = modularity(&g, &good);
        let q_bad = modularity(&g, &bad);
        assert!(q_good > 0.3, "good partition Q = {q_good}");
        assert!(q_good > q_bad);
        // Uniform partition has Q = 0 by definition... actually Q =
        // w_in/W - 1 = -2/14 for the single community minus... compute:
        let q_uni = modularity(&g, &Partition::uniform(6));
        assert!(q_uni.abs() < 1e-12);
    }

    #[test]
    fn modularity_in_range() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let q = modularity(&g, &p(&[0, 0, 1, 1]));
        assert!((-1.0..=1.0).contains(&q));
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different vertex sets")]
    fn mismatched_lengths_rejected() {
        normalized_mutual_information(&p(&[0, 1]), &p(&[0, 1, 2]));
    }

    fn two_triangles() -> asa_graph::CsrGraph {
        let mut b = GraphBuilder::undirected(6);
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(u, v, 1.0);
        }
        b.build()
    }

    #[test]
    fn coverage_counts_intra_weight() {
        let g = two_triangles();
        let good = p(&[0, 0, 0, 1, 1, 1]);
        // 6 of 7 edges are intra.
        assert!((coverage(&g, &good) - 6.0 / 7.0).abs() < 1e-12);
        assert!((coverage(&g, &Partition::uniform(6)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conductance_of_clean_split() {
        let g = two_triangles();
        let good = p(&[0, 0, 0, 1, 1, 1]);
        let phi = conductance(&g, &good);
        // Each triangle: cut 1, volume 7 => 1/7.
        assert_eq!(phi.len(), 2);
        for &x in &phi {
            assert!((x - 1.0 / 7.0).abs() < 1e-12);
        }
        // A bad split has strictly higher conductance.
        let bad = conductance(&g, &p(&[0, 1, 0, 1, 0, 1]));
        assert!(bad.iter().sum::<f64>() > phi.iter().sum::<f64>());
    }

    #[test]
    fn conductance_zero_for_disconnected() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        let phi = conductance(&b.build(), &p(&[0, 0, 1, 1]));
        assert_eq!(phi, vec![0.0, 0.0]);
    }
}
