//! # infomap-asa
//!
//! A reproduction of *"Fast Community Detection in Graphs with Infomap
//! Method using Accelerated Sparse Accumulation"* (Faysal et al., IPDPS
//! 2023): parallel information-theoretic community detection whose hot
//! hash-accumulation kernel can run either on a modeled software hash table
//! (the paper's Baseline, `std::unordered_map`-style) or on a simulated ASA
//! hardware accelerator (a per-core content-addressable memory with LRU
//! spill, Chao et al., TACO 2022).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`graph`] — CSR graphs, SNAP I/O, scale-free/LFR generators, degree
//!   and CAM-coverage analytics,
//! * [`infomap`] — the map equation, PageRank, `FindBestCommunity`,
//!   coarsening, the multi-level driver, and the simulated (ZSim-style)
//!   driver,
//! * [`hashsim`] — the instrumented software hash tables (Baseline),
//! * [`asa`] — the ASA accelerator model,
//! * [`simarch`] — the micro-architecture timing model (branch predictor,
//!   caches, cores, machine),
//! * [`baselines`] — Louvain, label propagation, NMI/ARI/modularity.
//!
//! ## Quickstart
//!
//! ```
//! use infomap_asa::graph::generators::{planted_partition, PlantedConfig};
//! use infomap_asa::infomap::{detect_communities, InfomapConfig};
//!
//! let (network, truth) = planted_partition(
//!     &PlantedConfig { communities: 4, community_size: 25, k_in: 10.0, k_out: 0.5 },
//!     7,
//! );
//! let result = detect_communities(&network, &InfomapConfig::default());
//! assert_eq!(result.num_communities(), 4);
//! assert_eq!(truth.num_communities(), 4);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the per-table/figure experiment harness.

pub use asa_accel as asa;
pub use asa_baselines as baselines;
pub use asa_graph as graph;
pub use asa_hashsim as hashsim;
pub use asa_infomap as infomap;
pub use asa_simarch as simarch;
