//! `infomap-asa` — command-line community detection and ASA simulation.
//!
//! ```text
//! infomap-asa stats    <edge-list>                      graph statistics
//! infomap-asa detect   <edge-list> [options]            community detection
//! infomap-asa generate <network> [options]              synthesize a Table I stand-in
//! infomap-asa simulate <edge-list> [options]            Baseline/ASA kernel simulation
//! ```
//!
//! Run `infomap-asa help` for the full option list. Edge lists are
//! SNAP-format: whitespace-separated `u v [w]` with `#` comments.

use std::io::Write;
use std::process::ExitCode;

use infomap_asa::asa::AsaConfig;
use infomap_asa::baselines::{label_propagation, louvain, modularity, LouvainConfig};
use infomap_asa::graph::connectivity::connected_components;
use infomap_asa::graph::degree::{cam_coverage, DegreeKind};
use infomap_asa::graph::generators::{synth_network, PaperNetwork};
use infomap_asa::graph::io::{read_edge_list_file, write_edge_list, ReadOptions};
use infomap_asa::graph::{CsrGraph, GraphStats, Partition};
use infomap_asa::infomap::instrumented::{simulate_infomap, Device};
use infomap_asa::infomap::{detect_communities, InfomapConfig};
use infomap_asa::simarch::MachineConfig;

const HELP: &str = "\
infomap-asa: community detection with Infomap and an ASA accelerator model

USAGE:
  infomap-asa stats    <edge-list> [--directed]
  infomap-asa detect   <edge-list> [--directed] [--algorithm infomap|louvain|labelprop]
                       [--recorded-teleport] [--output FILE]
  infomap-asa generate <amazon|dblp|youtube|soc-pokec|livejournal|orkut>
                       [--scale-div N] [--output FILE]
  infomap-asa simulate <edge-list> [--directed] [--device baseline|asa|probe]
                       [--cores N] [--cam-kb K]
  infomap-asa help

Edge lists are SNAP format (whitespace-separated `u v [weight]`, `#` comments).
`detect --output` writes one `vertex<TAB>community` line per vertex.
";

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if it
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                    && takes_value(name)
                {
                    Some(it.next().unwrap().clone())
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { positional, flags })
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn takes_value(flag: &str) -> bool {
    matches!(
        flag,
        "algorithm" | "output" | "scale-div" | "device" | "cores" | "cam-kb"
    )
}

fn load(path: &str, directed: bool) -> Result<CsrGraph, String> {
    let opts = ReadOptions {
        directed,
        ..Default::default()
    };
    read_edge_list_file(path, &opts)
        .map(|(g, _)| g)
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("stats: missing <edge-list>")?;
    let graph = load(path, args.has("directed"))?;
    println!("{}", GraphStats::of(&graph));
    let comps = connected_components(&graph);
    println!(
        "components: {} (largest {} = {:.1}%)",
        comps.count,
        comps.largest,
        100.0 * comps.largest as f64 / graph.num_nodes().max(1) as f64
    );
    println!("CAM coverage (16B entries):");
    for row in cam_coverage(&graph, &[1024, 2048, 4096, 8192], 16, DegreeKind::Out) {
        println!(
            "  {:>2} KB: {:.2}% of vertices fit",
            row.capacity_bytes / 1024,
            row.fraction_covered * 100.0
        );
    }
    Ok(())
}

fn write_partition(path: &str, partition: &Partition) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    for (u, &c) in partition.labels().iter().enumerate() {
        writeln!(out, "{u}\t{c}").map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())
}

fn cmd_detect(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("detect: missing <edge-list>")?;
    let graph = load(path, args.has("directed"))?;
    let algorithm = args.value("algorithm").unwrap_or("infomap");

    let partition = match algorithm {
        "infomap" => {
            let cfg = InfomapConfig {
                recorded_teleport: args.has("recorded-teleport"),
                ..Default::default()
            };
            let result = detect_communities(&graph, &cfg);
            println!(
                "infomap: {} communities, codelength {:.4} bits ({:.1}% compression), {:.3}s",
                result.num_communities(),
                result.codelength,
                result.compression() * 100.0,
                result.timings.total().as_secs_f64()
            );
            result.partition
        }
        "louvain" => {
            if graph.is_directed() {
                return Err("louvain requires an undirected graph".into());
            }
            let result = louvain(&graph, &LouvainConfig::default());
            println!(
                "louvain: {} communities, modularity {:.4}",
                result.partition.num_communities(),
                result.modularity
            );
            result.partition
        }
        "labelprop" => {
            let p = label_propagation(&graph, 30, 42);
            println!("label propagation: {} communities", p.num_communities());
            p
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };

    if !graph.is_directed() {
        println!("modularity: {:.4}", modularity(&graph, &partition));
    }
    let mut sizes = partition.community_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest communities: {:?}", &sizes[..sizes.len().min(10)]);

    // Flow summary of the biggest modules.
    let flow =
        infomap_asa::infomap::flow::FlowNetwork::from_graph(&graph, &InfomapConfig::default());
    let stats = infomap_asa::infomap::module_stats::module_statistics(&flow, &partition);
    println!(
        "\n{:<8} {:>8} {:>10} {:>10} {:>9}",
        "module", "size", "flow", "exit", "leakage"
    );
    for s in stats.iter().take(8) {
        println!(
            "{:<8} {:>8} {:>10.5} {:>10.5} {:>8.2}%",
            s.module,
            s.size,
            s.flow,
            s.exit,
            s.leakage * 100.0
        );
    }

    if let Some(out) = args.value("output") {
        write_partition(out, &partition)?;
        println!("wrote {} assignments to {out}", partition.len());
    }
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or("generate: missing <network>")?;
    let network = PaperNetwork::all()
        .into_iter()
        .find(|n| n.name() == name)
        .ok_or_else(|| format!("unknown network {name:?}; expected one of amazon, dblp, youtube, soc-pokec, livejournal, orkut"))?;
    let scale_div: usize = args
        .value("scale-div")
        .map(|v| v.parse().map_err(|_| format!("bad --scale-div {v:?}")))
        .transpose()?
        .unwrap_or(64);
    let (graph, truth) = synth_network(network, scale_div);
    println!(
        "{} stand-in at 1/{scale_div} scale: {}",
        network.name(),
        GraphStats::of(&graph)
    );
    println!("planted communities: {}", truth.num_communities());
    if let Some(out) = args.value("output") {
        let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        write_edge_list(&graph, file).map_err(|e| e.to_string())?;
        println!("wrote edge list to {out}");
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("simulate: missing <edge-list>")?;
    let graph = load(path, args.has("directed"))?;
    let cores: usize = args
        .value("cores")
        .map(|v| v.parse().map_err(|_| format!("bad --cores {v:?}")))
        .transpose()?
        .unwrap_or(1);
    let cam_kb: usize = args
        .value("cam-kb")
        .map(|v| v.parse().map_err(|_| format!("bad --cam-kb {v:?}")))
        .transpose()?
        .unwrap_or(8);
    let device = match args.value("device").unwrap_or("asa") {
        "baseline" => Device::SoftwareHash,
        "probe" => Device::LinearProbe,
        "asa" => Device::Asa(AsaConfig::with_cam_kb(cam_kb)),
        other => return Err(format!("unknown device {other:?}")),
    };

    let run = simulate_infomap(
        &graph,
        &InfomapConfig::default(),
        &MachineConfig::baseline(cores),
        device,
    );
    println!(
        "device {} on {} simulated core(s):",
        run.device, run.machine.cores
    );
    println!("  kernel time       {:.6} s", run.kernel_seconds());
    println!(
        "  hash-ops time     {:.6} s ({:.1}% of kernel)",
        run.hash_seconds(),
        run.hash_share() * 100.0
    );
    println!("  instructions      {}", run.total.instructions);
    println!(
        "  branches          {} ({} mispredicted, {:.2}%)",
        run.total.branches,
        run.total.mispredictions,
        run.total.mispredict_rate() * 100.0
    );
    println!("  CPI               {:.3}", run.total.cpi());
    println!(
        "  L1/L2/L3 misses   {} / {} / {}",
        run.total.l1_misses, run.total.l2_misses, run.total.l3_misses
    );
    if let Some(stats) = run.asa_stats {
        println!(
            "  ASA: {} accumulates, {} evictions, {:.2}% of gathers overflowed, overflow {:.1}% of hash time",
            stats.accumulates,
            stats.evictions,
            stats.overflow_rate * 100.0,
            run.overflow_share() * 100.0
        );
    }
    println!(
        "  communities       {} (codelength {:.4})",
        run.partition.num_communities(),
        run.codelength
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        print!("{HELP}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args),
        "detect" => cmd_detect(&args),
        "generate" => cmd_generate(&args),
        "simulate" => cmd_simulate(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `infomap-asa help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positional_and_flags() {
        let a = parse(&["graph.txt", "--directed", "--algorithm", "louvain"]);
        assert_eq!(a.positional, vec!["graph.txt"]);
        assert!(a.has("directed"));
        assert_eq!(a.value("algorithm"), Some("louvain"));
        assert!(!a.has("output"));
    }

    #[test]
    fn boolean_flag_does_not_swallow_positional() {
        // --directed takes no value, so the path after it stays positional.
        let a = parse(&["--directed", "graph.txt"]);
        assert!(a.has("directed"));
        assert_eq!(a.positional, vec!["graph.txt"]);
    }

    #[test]
    fn value_flags_consume_next_token() {
        let a = parse(&["g.txt", "--cores", "4", "--cam-kb", "2"]);
        assert_eq!(a.value("cores"), Some("4"));
        assert_eq!(a.value("cam-kb"), Some("2"));
        assert_eq!(a.positional, vec!["g.txt"]);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse(&["--output", "--directed"]);
        // --output expects a value but the next token is a flag: no value.
        assert!(a.has("output"));
        assert_eq!(a.value("output"), None);
        assert!(a.has("directed"));
    }

    #[test]
    fn detect_writes_partition_file() {
        let dir = std::env::temp_dir().join("asa-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("part.tsv");
        let partition = Partition::from_labels(vec![0, 1, 0]);
        write_partition(p.to_str().unwrap(), &partition).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text, "0\t0\n1\t1\n2\t0\n");
    }
}
