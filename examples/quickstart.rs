//! Quickstart: detect communities in a small synthetic social network.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a planted-partition network (four friend groups with a few
//! cross-group acquaintances), runs Infomap, and prints the detected
//! communities next to the ground truth.

use infomap_asa::baselines::normalized_mutual_information;
use infomap_asa::graph::generators::{planted_partition, PlantedConfig};
use infomap_asa::infomap::{detect_communities, InfomapConfig};

fn main() {
    // Four communities of 50 people; ~12 friendships inside a person's own
    // group for every ~1 acquaintance outside it.
    let config = PlantedConfig {
        communities: 4,
        community_size: 50,
        k_in: 12.0,
        k_out: 1.0,
    };
    let (network, ground_truth) = planted_partition(&config, 2023);
    println!(
        "network: {} people, {} friendships",
        network.num_nodes(),
        network.num_edges()
    );

    let result = detect_communities(&network, &InfomapConfig::default());

    println!(
        "Infomap found {} communities (planted: {})",
        result.num_communities(),
        ground_truth.num_communities()
    );
    println!(
        "codelength: {:.4} bits/step (down from {:.4} for singletons, {:.1}% compression)",
        result.codelength,
        result.initial_codelength,
        result.compression() * 100.0
    );
    println!(
        "agreement with ground truth (NMI): {:.4}",
        normalized_mutual_information(&result.partition, &ground_truth)
    );

    let sizes = result.partition.community_sizes();
    println!("community sizes: {sizes:?}");
    println!(
        "kernel breakdown: pagerank {:?}, find-best {:?}, coarsen {:?}, update {:?}",
        result.timings.pagerank,
        result.timings.find_best,
        result.timings.convert,
        result.timings.update
    );
}
