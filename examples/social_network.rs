//! Social-network scenario: community detection on a scale-free network
//! with power-law degree distribution, plus the CAM-coverage analysis that
//! motivates the ASA accelerator (paper Figures 4 & 5).
//!
//! Run with:
//! ```text
//! cargo run --release --example social_network
//! ```

use infomap_asa::baselines::{louvain, modularity, LouvainConfig};
use infomap_asa::graph::degree::{cam_coverage, DegreeHistogram, DegreeKind};
use infomap_asa::graph::generators::{synth_network, PaperNetwork};
use infomap_asa::graph::GraphStats;
use infomap_asa::infomap::{detect_communities, InfomapConfig};

fn main() {
    // A YouTube-like social network at 1/256 of the paper's scale.
    let (network, _truth) = synth_network(PaperNetwork::YouTube, 256);
    println!("{}", GraphStats::of(&network));

    // --- Degree distribution (paper Fig. 4): a few hubs, many leaves.
    let hist = DegreeHistogram::of(&network, DegreeKind::Out);
    println!(
        "\ndegree distribution: mean {:.1}, max {}, power-law alpha {:?}",
        hist.mean(),
        hist.max_degree(),
        hist.power_law_alpha((2.0 * hist.mean()) as usize)
    );
    for (deg, count) in hist.log_binned(4.0) {
        let bar = "#".repeat(((count.ln().max(0.0)) * 4.0) as usize);
        println!("  deg ~{deg:>7.1}: {count:>10.1}  {bar}");
    }

    // --- CAM coverage (paper Fig. 5): how much on-chip memory does a
    // per-core accumulator need?
    println!("\nCAM coverage (16-byte entries):");
    for row in cam_coverage(&network, &[1024, 2048, 4096, 8192], 16, DegreeKind::Out) {
        println!(
            "  {:>4} KB ({:>4} entries): {:.2}% of vertices fit",
            row.capacity_bytes / 1024,
            row.entries,
            row.fraction_covered * 100.0
        );
    }

    // --- Communities: Infomap vs the Louvain modularity baseline.
    let infomap = detect_communities(&network, &InfomapConfig::default());
    let louv = louvain(&network, &LouvainConfig::default());
    println!(
        "\nInfomap:  {} communities, codelength {:.4} bits, modularity {:.4}",
        infomap.num_communities(),
        infomap.codelength,
        modularity(&network, &infomap.partition)
    );
    println!(
        "Louvain:  {} communities, modularity {:.4}",
        louv.partition.num_communities(),
        louv.modularity
    );

    let mut sizes = infomap.partition.community_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "largest Infomap communities: {:?}",
        &sizes[..sizes.len().min(10)]
    );
}
