//! Biological-network scenario: clustering protein-interaction-like graphs
//! (paper Fig. 1 motivates community detection with a yeast PPI network;
//! Section I argues the CAM capacity results transfer to metagenome and
//! protein-clustering workloads because those networks share the same
//! sparsity and degree distribution).
//!
//! Run with:
//! ```text
//! cargo run --release --example protein_clusters
//! ```
//!
//! Builds an LFR benchmark standing in for a protein functional-module
//! network (modules = functional groups), runs Infomap, and reports how
//! well functional modules are recovered as the inter-module interaction
//! rate grows.

use infomap_asa::baselines::{adjusted_rand_index, normalized_mutual_information};
use infomap_asa::graph::generators::{lfr_benchmark, LfrConfig};
use infomap_asa::infomap::{detect_communities, InfomapConfig};

fn main() {
    println!("protein functional-module recovery vs cross-module interaction rate\n");
    println!(
        "{:<6} {:>8} {:>8} {:>10} {:>10}",
        "mu", "NMI", "ARI", "#modules", "#true"
    );

    for mu10 in [1usize, 2, 3, 4, 5] {
        let mu = mu10 as f64 / 10.0;
        // ~1500 proteins, functional modules of 15-80 proteins, average
        // ~12 interactions per protein — PPI-like sparsity.
        let lfr = lfr_benchmark(
            &LfrConfig {
                n: 1500,
                degree_exponent: 2.5,
                community_exponent: 1.5,
                avg_degree: 12,
                max_degree: 60,
                min_community: 15,
                max_community: 80,
                mu,
            },
            777 + mu10 as u64,
        );

        let result = detect_communities(&lfr.graph, &InfomapConfig::default());
        let nmi = normalized_mutual_information(&result.partition, &lfr.ground_truth);
        let ari = adjusted_rand_index(&result.partition, &lfr.ground_truth);
        println!(
            "{:<6.1} {:>8.4} {:>8.4} {:>10} {:>10}",
            mu,
            nmi,
            ari,
            result.num_communities(),
            lfr.ground_truth.num_communities()
        );
    }

    println!(
        "\nreading: proteins sharing a functional module are recovered near-perfectly while\n\
         cross-module interactions stay below ~40% of each protein's interaction budget"
    );
}
