//! The headline experiment in miniature: run the `FindBestCommunity`
//! kernel on the simulated machine with the software hash Baseline and
//! with the ASA accelerator, and compare.
//!
//! Run with:
//! ```text
//! cargo run --release --example asa_speedup
//! ```

use infomap_asa::asa::AsaConfig;
use infomap_asa::graph::generators::{synth_network, PaperNetwork};
use infomap_asa::infomap::instrumented::{simulate_infomap, Device};
use infomap_asa::infomap::InfomapConfig;
use infomap_asa::simarch::MachineConfig;

fn main() {
    // A Pokec-like network (the paper's best case: 5.56x) at reduced scale.
    let (network, _) = synth_network(PaperNetwork::Pokec, 256);
    println!(
        "simulating FindBestCommunity on a soc-pokec-like network: {} vertices, {} edges\n",
        network.num_nodes(),
        network.num_edges()
    );

    let icfg = InfomapConfig::default();
    let machine = MachineConfig::baseline(1);

    let baseline = simulate_infomap(&network, &icfg, &machine, Device::SoftwareHash);
    let asa = simulate_infomap(
        &network,
        &icfg,
        &machine,
        Device::Asa(AsaConfig::paper_default()),
    );

    // Identical answers — the accelerator changes cost, not semantics.
    assert_eq!(baseline.partition.labels(), asa.partition.labels());
    println!(
        "both devices detect the same {} communities (codelength {:.4} bits)\n",
        baseline.partition.num_communities(),
        baseline.codelength
    );

    let rows = [
        (
            "kernel time (s)",
            baseline.kernel_seconds(),
            asa.kernel_seconds(),
        ),
        (
            "hash-ops time (s)",
            baseline.hash_seconds(),
            asa.hash_seconds(),
        ),
        (
            "instructions (M)",
            baseline.total.instructions as f64 / 1e6,
            asa.total.instructions as f64 / 1e6,
        ),
        (
            "mispredicts (K)",
            baseline.total.mispredictions as f64 / 1e3,
            asa.total.mispredictions as f64 / 1e3,
        ),
        ("CPI", baseline.total.cpi(), asa.total.cpi()),
    ];
    println!(
        "{:<20} {:>14} {:>14} {:>10}",
        "metric", "Baseline", "ASA", "ratio"
    );
    for (name, b, a) in rows {
        println!("{name:<20} {b:>14.4} {a:>14.4} {:>9.2}x", b / a);
    }

    println!(
        "\nhash-operation speedup: {:.2}x (paper reports 5.56x for soc-Pokec at full scale)",
        baseline.hash_seconds() / asa.hash_seconds()
    );
    if let Some(stats) = asa.asa_stats {
        println!(
            "ASA device: {} accumulates, {:.1}% CAM hit rate, {} evictions, {:.2}% of gathers overflowed",
            stats.accumulates,
            stats.hits as f64 / stats.accumulates.max(1) as f64 * 100.0,
            stats.evictions,
            stats.overflow_rate * 100.0
        );
        println!(
            "overflow handling: {:.2}% of ASA hash time (paper: 9.86% for Pokec)",
            asa.overflow_share() * 100.0
        );
    }
}
