//! Directed-flow scenario: community detection on a web-style directed
//! graph, exercising the PageRank flow model (teleportation, dangling
//! pages) and the recorded-teleportation variant of the map equation.
//!
//! Run with:
//! ```text
//! cargo run --release --example directed_web
//! ```

use infomap_asa::graph::GraphBuilder;
use infomap_asa::infomap::{detect_communities, InfomapConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A synthetic "web": 40 sites of 25 pages. Pages link mostly within
    // their site (hierarchical nav + content links), occasionally across
    // sites; 5% of pages are dangling (no out-links).
    let sites = 40usize;
    let pages_per_site = 25usize;
    let n = sites * pages_per_site;
    let mut rng = SmallRng::seed_from_u64(99);
    let mut b = GraphBuilder::directed(n);
    for p in 0..n as u32 {
        if rng.gen::<f64>() < 0.05 {
            continue; // dangling page
        }
        let site = p as usize / pages_per_site;
        let outlinks = rng.gen_range(3..10);
        for _ in 0..outlinks {
            let target = if rng.gen::<f64>() < 0.85 {
                // Intra-site link.
                (site * pages_per_site + rng.gen_range(0..pages_per_site)) as u32
            } else {
                rng.gen_range(0..n as u32)
            };
            if target != p {
                b.add_edge(p, target, 1.0);
            }
        }
    }
    let web = b.build();
    println!(
        "web graph: {} pages, {} links, {} dangling",
        web.num_nodes(),
        web.num_edges(),
        web.dangling_nodes().len()
    );

    // Unrecorded teleportation (modern Infomap default).
    let unrec = detect_communities(&web, &InfomapConfig::default());
    // Recorded teleportation (the paper's Eq. 1 formulation).
    let rec = detect_communities(
        &web,
        &InfomapConfig {
            recorded_teleport: true,
            ..Default::default()
        },
    );

    println!(
        "\nunrecorded teleport: {} communities (planted sites: {sites}), codelength {:.4}",
        unrec.num_communities(),
        unrec.codelength
    );
    println!(
        "recorded teleport:   {} communities, codelength {:.4} (higher: teleport jumps are encoded)",
        rec.num_communities(),
        rec.codelength
    );

    // How pure are the detected communities w.r.t. sites?
    let purity = |partition: &infomap_asa::graph::Partition| {
        let mut majority = vec![std::collections::HashMap::new(); partition.num_communities()];
        for p in 0..n as u32 {
            *majority[partition.community_of(p) as usize]
                .entry(p as usize / pages_per_site)
                .or_insert(0usize) += 1;
        }
        let pure: usize = majority
            .iter()
            .map(|counts| counts.values().copied().max().unwrap_or(0))
            .sum();
        pure as f64 / n as f64
    };
    println!(
        "\nsite purity: unrecorded {:.3}, recorded {:.3}",
        purity(&unrec.partition),
        purity(&rec.partition)
    );
    println!("hierarchy depth: {} levels", unrec.hierarchy_depth());
}
