//! Cross-crate property-based tests (proptest).
//!
//! These pin the semantic contracts that the whole reproduction rests on:
//! every accumulation device is an exact key→sum map regardless of
//! capacity; graphs round-trip through the SNAP format; the map equation's
//! incremental deltas agree with full recomputation on arbitrary networks;
//! quality metrics respect their ranges.

use proptest::prelude::*;

use infomap_asa::asa::{AsaAccumulator, AsaConfig};
use infomap_asa::graph::io::{read_edge_list, write_edge_list, ReadOptions};
use infomap_asa::graph::{GraphBuilder, Partition};
use infomap_asa::hashsim::{ChainedAccumulator, LinearProbeAccumulator};
use infomap_asa::infomap::flow::FlowNetwork;
use infomap_asa::infomap::local_move::SpaAccumulator;
use infomap_asa::infomap::mapeq::{codelength, module_flows_of, MapState};
use infomap_asa::infomap::InfomapConfig;
use infomap_asa::simarch::accum::{FlowAccumulator, OracleAccumulator};
use infomap_asa::simarch::events::NullSink;

/// Runs a key/value stream through any accumulator and returns the sorted
/// gathered pairs.
fn run_device<A: FlowAccumulator>(acc: &mut A, stream: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut sink = NullSink;
    acc.begin(&mut sink);
    for &(k, v) in stream {
        acc.accumulate(k, v, &mut sink);
    }
    let mut out = Vec::new();
    acc.gather(&mut out, &mut sink);
    out.sort_by_key(|a| a.0);
    out
}

fn pairs_equal(a: &[(u32, f64)], b: &[(u32, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.0 == y.0 && (x.1 - y.1).abs() < 1e-9 * (1.0 + x.1.abs()))
}

fn stream_strategy() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..200, 0.001f64..10.0), 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chained_hash_is_exact(stream in stream_strategy()) {
        let oracle = run_device(&mut OracleAccumulator::default(), &stream);
        let got = run_device(&mut ChainedAccumulator::new(), &stream);
        prop_assert!(pairs_equal(&oracle, &got));
    }

    #[test]
    fn linear_probe_is_exact(stream in stream_strategy()) {
        let oracle = run_device(&mut OracleAccumulator::default(), &stream);
        let got = run_device(&mut LinearProbeAccumulator::new(), &stream);
        prop_assert!(pairs_equal(&oracle, &got));
    }

    #[test]
    fn asa_is_exact_for_any_cam_capacity(
        stream in stream_strategy(),
        cam_entries in 1usize..64,
    ) {
        let oracle = run_device(&mut OracleAccumulator::default(), &stream);
        let mut asa = AsaAccumulator::new(AsaConfig {
            cam_bytes: cam_entries * 16,
            entry_bytes: 16,
            ..AsaConfig::paper_default()
        });
        let got = run_device(&mut asa, &stream);
        prop_assert!(
            pairs_equal(&oracle, &got),
            "CAM of {cam_entries} entries corrupted sums"
        );
    }

    #[test]
    fn spa_is_exact_for_any_capacity(
        stream in stream_strategy(),
        extra_capacity in 0usize..300,
    ) {
        // The SPA contract: a dense epoch-stamped array behaves exactly
        // like a BTreeMap<u32, f64> for any capacity admitting the keys.
        // Both add per-key values in arrival order, so the sums must be
        // bit-identical, not merely close.
        let oracle = run_device(&mut OracleAccumulator::default(), &stream);
        let mut spa = SpaAccumulator::with_capacity(200 + extra_capacity);
        let got = run_device(&mut spa, &stream);
        prop_assert_eq!(oracle.len(), got.len());
        for (o, g) in oracle.iter().zip(got.iter()) {
            prop_assert_eq!(o.0, g.0);
            prop_assert_eq!(o.1.to_bits(), g.1.to_bits(), "key {} sum diverged", o.0);
        }
    }

    #[test]
    fn spa_survives_reuse_across_rounds(
        rounds in prop::collection::vec(stream_strategy(), 1..5),
    ) {
        // One SPA reused across rounds (as the decision phase drives it)
        // must match fresh BTreeMap oracles every round.
        let mut spa = SpaAccumulator::with_capacity(200);
        for stream in &rounds {
            let oracle = run_device(&mut OracleAccumulator::default(), stream);
            let got = run_device(&mut spa, stream);
            prop_assert_eq!(&oracle, &got);
        }
    }

    #[test]
    fn devices_survive_reuse_across_rounds(
        rounds in prop::collection::vec(stream_strategy(), 1..5),
    ) {
        // Reusing one device across many vertices must behave like fresh
        // oracles each round (this is how the kernel drives devices).
        let mut chained = ChainedAccumulator::new();
        let mut probe = LinearProbeAccumulator::new();
        let mut asa = AsaAccumulator::new(AsaConfig { cam_bytes: 8 * 16, entry_bytes: 16, ..AsaConfig::paper_default() });
        for stream in &rounds {
            let oracle = run_device(&mut OracleAccumulator::default(), stream);
            prop_assert!(pairs_equal(&oracle, &run_device(&mut chained, stream)));
            prop_assert!(pairs_equal(&oracle, &run_device(&mut probe, stream)));
            prop_assert!(pairs_equal(&oracle, &run_device(&mut asa, stream)));
        }
    }

    #[test]
    fn snap_io_round_trips(
        edges in prop::collection::vec((0u32..50, 0u32..50), 1..200),
    ) {
        let mut b = GraphBuilder::undirected(50).drop_self_loops(true);
        for &(u, v) in &edges {
            if u != v {
                b.add_edge(u, v, 1.0);
            }
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = read_edge_list(buf.as_slice(), &ReadOptions::default()).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        // Vertex count may shrink for isolated vertices (edge lists cannot
        // express them); edge multiset must survive.
        prop_assert!(g2.num_nodes() <= g.num_nodes());
    }

    #[test]
    fn delta_codelength_matches_recomputation(
        edges in prop::collection::vec((0u32..12, 0u32..12, 1u32..5), 5..60),
        labels in prop::collection::vec(0u32..4, 12),
        vertex in 0u32..12,
        target in 0u32..4,
    ) {
        let mut b = GraphBuilder::undirected(12).drop_self_loops(true);
        for &(u, v, w) in &edges {
            if u != v {
                b.add_edge(u, v, w as f64);
            }
        }
        let g = b.build();
        let flow = FlowNetwork::from_graph(&g, &InfomapConfig::default());
        // Force 4 label slots even if some are unused.
        let mut padded = labels.clone();
        padded[0] = 0; padded[1] = 1; padded[2] = 2; padded[3] = 3;
        let partition = Partition::from_labels(padded);
        let old = partition.community_of(vertex);
        prop_assume!(old != target && (target as usize) < partition.num_communities());

        let state = MapState::new(&flow, &partition);
        let delta = state.delta_move(
            old,
            target,
            &flow.node_summary(vertex),
            module_flows_of(&flow, &partition, vertex, old),
            module_flows_of(&flow, &partition, vertex, target),
        );
        let l0 = state.codelength();
        let mut moved = partition.clone();
        moved.assign(vertex, target);
        let l1 = codelength(&flow, &moved);
        prop_assert!(
            (delta - (l1 - l0)).abs() < 1e-8,
            "delta {} vs recomputed {}",
            delta,
            l1 - l0
        );
    }

    #[test]
    fn nmi_and_ari_bounded(
        a in prop::collection::vec(0u32..6, 2..80),
    ) {
        use infomap_asa::baselines::{adjusted_rand_index, normalized_mutual_information};
        let b: Vec<u32> = a.iter().map(|&x| (x + 1) % 3).collect();
        let pa = Partition::from_labels(a.clone());
        let pb = Partition::from_labels(b);
        let nmi = normalized_mutual_information(&pa, &pb);
        prop_assert!((0.0..=1.0).contains(&nmi));
        let self_nmi = normalized_mutual_information(&pa, &pa);
        prop_assert!((self_nmi - 1.0).abs() < 1e-9);
        let ari = adjusted_rand_index(&pa, &pa);
        prop_assert!((ari - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partition_projection_composes(
        fine in prop::collection::vec(0u32..8, 1..60),
    ) {
        let p = Partition::from_labels(fine);
        let m = p.num_communities();
        let coarse = Partition::from_labels((0..m as u32).map(|c| c / 2).collect());
        let projected = p.project(&coarse);
        prop_assert_eq!(projected.len(), p.len());
        prop_assert!(projected.num_communities() <= m);
        // Vertices that shared a fine community still share the coarse one.
        for u in 0..p.len() as u32 {
            for v in 0..p.len() as u32 {
                if p.community_of(u) == p.community_of(v) {
                    prop_assert_eq!(projected.community_of(u), projected.community_of(v));
                }
            }
        }
    }
}
