//! Cross-crate integration tests: the full pipeline from graph generation
//! through community detection, device simulation, and quality scoring.

use infomap_asa::asa::AsaConfig;
use infomap_asa::baselines::{
    label_propagation, louvain, modularity, normalized_mutual_information, LouvainConfig,
};
use infomap_asa::graph::generators::{
    lfr_benchmark, planted_partition, synth_network, LfrConfig, PaperNetwork, PlantedConfig,
};
use infomap_asa::infomap::instrumented::{native_infomap, simulate_infomap, Device};
use infomap_asa::infomap::{detect_communities, InfomapConfig};
use infomap_asa::simarch::MachineConfig;

#[test]
fn spa_and_hash_paths_agree_end_to_end() {
    // The SPA fast path is a pure perf substitution: forcing either
    // accumulator through the full multi-level driver must yield the
    // identical partition and codelength, bit for bit.
    use infomap_asa::infomap::config::AccumulatorKind;
    let (graph, _) = planted_partition(
        &PlantedConfig {
            communities: 8,
            community_size: 40,
            k_in: 11.0,
            k_out: 1.2,
        },
        29,
    );
    let spa = detect_communities(
        &graph,
        &InfomapConfig {
            accumulator: AccumulatorKind::Spa,
            ..Default::default()
        },
    );
    let hash = detect_communities(
        &graph,
        &InfomapConfig {
            accumulator: AccumulatorKind::Hash,
            ..Default::default()
        },
    );
    assert_eq!(spa.partition.labels(), hash.partition.labels());
    assert_eq!(spa.codelength.to_bits(), hash.codelength.to_bits());
    assert_eq!(spa.levels.len(), hash.levels.len());
    // The default Auto selection matches both on a graph this small.
    let auto = detect_communities(&graph, &InfomapConfig::default());
    assert_eq!(auto.partition.labels(), spa.partition.labels());
    assert_eq!(auto.codelength.to_bits(), spa.codelength.to_bits());
}

#[test]
fn infomap_recovers_planted_communities() {
    let (graph, truth) = planted_partition(
        &PlantedConfig {
            communities: 10,
            community_size: 50,
            k_in: 12.0,
            k_out: 1.0,
        },
        1,
    );
    let result = detect_communities(&graph, &InfomapConfig::default());
    let nmi = normalized_mutual_information(&result.partition, &truth);
    assert!(nmi > 0.95, "NMI {nmi} below expectation");
    assert!(result.codelength < result.initial_codelength);
}

#[test]
fn infomap_beats_or_matches_louvain_on_lfr() {
    // The paper's core quality claim (Section I, refs [1], [18]).
    let mut infomap_total = 0.0;
    let mut louvain_total = 0.0;
    for (seed, mu) in [(11u64, 0.2f64), (12, 0.35), (13, 0.5)] {
        let lfr = lfr_benchmark(
            &LfrConfig {
                n: 1200,
                mu,
                ..Default::default()
            },
            seed,
        );
        let im = detect_communities(&lfr.graph, &InfomapConfig::default());
        let lv = louvain(&lfr.graph, &LouvainConfig::default());
        infomap_total += normalized_mutual_information(&im.partition, &lfr.ground_truth);
        louvain_total += normalized_mutual_information(&lv.partition, &lfr.ground_truth);
    }
    assert!(
        infomap_total >= louvain_total - 0.05,
        "Infomap NMI sum {infomap_total} fell behind Louvain {louvain_total}"
    );
}

#[test]
fn all_detectors_agree_on_disconnected_cliques() {
    use infomap_asa::graph::GraphBuilder;
    let mut b = GraphBuilder::undirected(9);
    for base in [0u32, 3, 6] {
        b.add_edge(base, base + 1, 1.0);
        b.add_edge(base + 1, base + 2, 1.0);
        b.add_edge(base + 2, base, 1.0);
    }
    let g = b.build();
    let im = detect_communities(&g, &InfomapConfig::default());
    let lv = louvain(&g, &LouvainConfig::default());
    let lp = label_propagation(&g, 20, 3);
    assert_eq!(im.num_communities(), 3);
    assert_eq!(lv.partition.num_communities(), 3);
    assert_eq!(lp.num_communities(), 3);
    assert!((normalized_mutual_information(&im.partition, &lv.partition) - 1.0).abs() < 1e-9);
    assert!((normalized_mutual_information(&im.partition, &lp) - 1.0).abs() < 1e-9);
}

#[test]
fn devices_produce_identical_partitions() {
    let (graph, _) = synth_network(PaperNetwork::Amazon, 512);
    let icfg = InfomapConfig::default();
    let mcfg = MachineConfig::baseline(2);

    let base = simulate_infomap(&graph, &icfg, &mcfg, Device::SoftwareHash);
    let probe = simulate_infomap(&graph, &icfg, &mcfg, Device::LinearProbe);
    let asa = simulate_infomap(
        &graph,
        &icfg,
        &mcfg,
        Device::Asa(AsaConfig::paper_default()),
    );
    let tiny = simulate_infomap(
        &graph,
        &icfg,
        &mcfg,
        Device::Asa(AsaConfig {
            cam_bytes: 128,
            entry_bytes: 16,
            ..AsaConfig::paper_default()
        }),
    );
    let native = native_infomap(&graph, &icfg, 2, Device::SoftwareHash);
    let host = detect_communities(&graph, &icfg);

    assert_eq!(base.partition.labels(), probe.partition.labels());
    assert_eq!(base.partition.labels(), asa.partition.labels());
    assert_eq!(base.partition.labels(), tiny.partition.labels());
    assert_eq!(base.partition.labels(), native.partition.labels());
    assert_eq!(base.partition.labels(), host.partition.labels());
    assert!((base.codelength - host.codelength).abs() < 1e-9);
}

#[test]
fn simulated_speedup_in_paper_band() {
    let (graph, _) = synth_network(PaperNetwork::Dblp, 256);
    let icfg = InfomapConfig::default();
    let mcfg = MachineConfig::baseline(1);
    let base = simulate_infomap(&graph, &icfg, &mcfg, Device::SoftwareHash);
    let asa = simulate_infomap(
        &graph,
        &icfg,
        &mcfg,
        Device::Asa(AsaConfig::paper_default()),
    );
    let speedup = base.hash_seconds() / asa.hash_seconds();
    // Paper: 3.28x - 5.56x across networks. Allow headroom for scale.
    assert!(
        (2.5..8.0).contains(&speedup),
        "hash speedup {speedup} outside the plausible band"
    );
    // Secondary metrics move the right way.
    assert!(base.total.instructions > asa.total.instructions);
    assert!(base.total.mispredictions > asa.total.mispredictions);
    assert!(base.total.cpi() > asa.total.cpi());
}

#[test]
fn modularity_and_codelength_prefer_the_same_structure() {
    let (graph, truth) = planted_partition(
        &PlantedConfig {
            communities: 6,
            community_size: 40,
            k_in: 10.0,
            k_out: 1.0,
        },
        21,
    );
    let im = detect_communities(&graph, &InfomapConfig::default());
    let q_detected = modularity(&graph, &im.partition);
    let q_truth = modularity(&graph, &truth);
    assert!(q_detected > 0.5);
    assert!((q_detected - q_truth).abs() < 0.1);
}

#[test]
fn recursive_detection_via_subgraphs() {
    use infomap_asa::graph::subgraph::community_subgraph;
    use infomap_asa::graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    // Two-scale structure: 3 super-communities, each containing 3 dense
    // cliques of 8 vertices connected by a few internal bridges; super-
    // communities connected by single weak links.
    let clique = 8usize;
    let per_super = 3usize;
    let supers = 3usize;
    let n = clique * per_super * supers;
    let mut b = GraphBuilder::undirected(n);
    let mut rng = SmallRng::seed_from_u64(7);
    for s in 0..supers {
        for c in 0..per_super {
            let base = (s * per_super + c) * clique;
            for i in 0..clique {
                for j in (i + 1)..clique {
                    b.add_edge((base + i) as u32, (base + j) as u32, 1.0);
                }
            }
        }
        // Intra-super bridges between cliques (several, so the super level
        // coheres).
        for c in 0..per_super {
            let a = (s * per_super + c) * clique;
            let d = (s * per_super + (c + 1) % per_super) * clique;
            for _ in 0..3 {
                b.add_edge(
                    (a + rng.gen_range(0..clique)) as u32,
                    (d + rng.gen_range(0..clique)) as u32,
                    1.0,
                );
            }
        }
    }
    // Weak inter-super links.
    for s in 0..supers {
        let a = s * per_super * clique;
        let d = ((s + 1) % supers) * per_super * clique;
        b.add_edge(a as u32, d as u32, 0.5);
    }
    let g = b.build();

    // Top level: Infomap finds some coarse partitioning; at minimum it must
    // not merge different super-communities' cliques.
    let top = detect_communities(&g, &InfomapConfig::default());
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            let (su, sv) = (
                u as usize / (clique * per_super),
                v as usize / (clique * per_super),
            );
            if top.partition.community_of(u) == top.partition.community_of(v) {
                assert_eq!(su, sv, "top level merged distinct super-communities");
            }
        }
    }

    // Recurse into the community containing vertex 0: detection inside the
    // subgraph must separate its cliques.
    let c0 = top.partition.community_of(0);
    let sub = community_subgraph(&g, &top.partition, c0);
    assert!(sub.graph.num_nodes() >= clique);
    let inner = detect_communities(&sub.graph, &InfomapConfig::default());
    // Vertices of the same clique stay together inside the community.
    for (i, &orig_i) in sub.original.iter().enumerate() {
        for (j, &orig_j) in sub.original.iter().enumerate() {
            if orig_i as usize / clique == orig_j as usize / clique {
                assert_eq!(
                    inner.partition.community_of(i as u32),
                    inner.partition.community_of(j as u32),
                    "clique split during recursive detection"
                );
            }
        }
    }
}

#[test]
fn scaling_cores_shrinks_barrier_time() {
    let (graph, _) = synth_network(PaperNetwork::Amazon, 512);
    let icfg = InfomapConfig::default();
    let t1 = simulate_infomap(
        &graph,
        &icfg,
        &MachineConfig::baseline(1),
        Device::SoftwareHash,
    )
    .total
    .cycles;
    let t4 = simulate_infomap(
        &graph,
        &icfg,
        &MachineConfig::baseline(4),
        Device::SoftwareHash,
    )
    .total
    .cycles;
    assert!(
        t4 < t1 * 0.5,
        "4 simulated cores should cut barrier cycles well below half: {t4} vs {t1}"
    );
}
