//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little surface the repo's binary I/O uses: [`BytesMut`]
//! as a growable write buffer ([`BufMut`]) and [`Bytes`] as a cursor over
//! an owned byte vector ([`Buf`]). Panics on under-read like the real
//! crate; callers bounds-check with [`Buf::remaining`] first.

use std::ops::Deref;

/// Read cursor over owned bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

/// Append-only write buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, n: f64);
}

/// Immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Length of the unconsumed tail.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unconsumed tail is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.pos + n <= self.data.len(), "buffer under-read");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n).to_vec())
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }
}

/// Growable byte buffer for serialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no bytes were written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, n: u8) {
        self.data.push(n);
    }

    fn put_u32_le(&mut self, n: u32) {
        self.data.extend_from_slice(&n.to_le_bytes());
    }

    fn put_u64_le(&mut self, n: u64) {
        self.data.extend_from_slice(&n.to_le_bytes());
    }

    fn put_f64_le(&mut self, n: f64) {
        self.data.extend_from_slice(&n.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut w = BytesMut::new();
        w.put_slice(b"MAGI");
        w.put_u8(7);
        w.put_u32_le(42);
        w.put_u64_le(1 << 40);
        w.put_f64_le(2.5);
        let mut r = Bytes::from(w.to_vec());
        assert_eq!(&r.copy_to_bytes(4)[..], b"MAGI");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.remaining(), 0);
    }
}
