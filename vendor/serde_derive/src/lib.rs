//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the derive input token stream (no `syn`/`quote`) and emits
//! `impl serde::Serialize` / `impl serde::Deserialize` blocks against the
//! companion Value-based `serde` stub. Supports what the repo derives on:
//! non-generic named-field structs, and enums with unit, newtype, or
//! struct variants (externally tagged, like real serde). `#[serde(...)]`
//! attributes are not supported (none are used in-repo).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl")
}

// ---------------------------------------------------------------------------
// A minimal item model.

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing.

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    // Generic parameters are unsupported (and unused in this repo).
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive stub: generic type `{name}` not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive stub: `{name}` has no brace body"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_field_names(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Splits a brace body at top-level commas (angle-bracket depth tracked so
/// generic arguments like `Vec<(u32, f64)>` don't split).
fn split_top_level(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces = vec![Vec::new()];
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                // `->` in an fn-pointer type must not close an angle.
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    prev_dash = false;
                    pieces.push(Vec::new());
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        pieces.last_mut().unwrap().push(tok);
    }
    pieces.retain(|p| !p.is_empty());
    pieces
}

/// First identifier of a field declaration, after attributes and
/// visibility: that is the field name.
fn field_name(piece: &[TokenTree]) -> String {
    let mut i = 0;
    while i < piece.len() {
        match &piece[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = piece.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return id.to_string(),
            other => panic!("unexpected token in field: {other:?}"),
        }
    }
    panic!("field without a name")
}

fn parse_field_names(body: TokenStream) -> Vec<String> {
    split_top_level(body)
        .iter()
        .map(|p| field_name(p))
        .collect()
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    split_top_level(body)
        .into_iter()
        .map(|piece| {
            let mut i = 0;
            // Skip variant attributes such as `#[default]`.
            while matches!(&piece[i], TokenTree::Punct(p) if p.as_char() == '#') {
                i += 2;
            }
            let name = match &piece[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, got {other:?}"),
            };
            let shape = match piece.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Struct(parse_field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = split_top_level(g.stream()).len();
                    assert!(n == 1, "tuple variant `{name}` with {n} fields unsupported");
                    VariantShape::Newtype
                }
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation.

fn obj_entries(fields: &[String], access: impl Fn(&str) -> String) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({})),",
                access(f)
            )
        })
        .collect()
}

fn field_reads(fields: &[String], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::get_field({src}, \"{f}\")?)?,")
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries = obj_entries(fields, |f| format!("&self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec::Vec::from([{entries}]))\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                                 ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Newtype => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{vn}\"), \
                                  ::serde::Serialize::to_value(__f0))])),"
                        ),
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries = obj_entries(fields, |f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                     ::serde::Value::Object(::std::vec::Vec::from([\
                                     (::std::string::String::from(\"{vn}\"), \
                                      ::serde::Value::Object(::std::vec::Vec::from([{entries}])))])),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let reads = field_reads(fields, "__v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {reads} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Newtype => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantShape::Struct(fields) => {
                            let reads = field_reads(fields, "__inner");
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {reads} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"expected {name} variant\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
