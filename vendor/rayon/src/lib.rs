//! Offline stand-in for the `rayon` crate.
//!
//! Data-parallel iterators executed by a deterministic block scheduler on
//! `std::thread::scope` threads. The surface matches what this repo uses:
//! `par_iter` / `par_iter_mut` / `par_chunks` / range `into_par_iter`,
//! the `map` / `filter` / `enumerate` / `zip` / `flatten` adapters, the
//! `for_each` / `collect` / `sum` drivers, plus `current_num_threads`,
//! `ThreadPoolBuilder` and `ThreadPool::install`.
//!
//! Determinism: the index space is split into fixed-size blocks that
//! depend only on the length (never on the thread count), workers claim
//! blocks from an atomic cursor, and results are stitched back in block
//! order. Ordered drivers (`collect`) therefore return exactly the
//! sequential order, and floating-point reductions (`sum`) use a fixed
//! association independent of how many threads ran.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Thread-count plumbing.

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Worker-thread count: the innermost [`ThreadPool::install`] override,
/// else `RAYON_NUM_THREADS`, else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for a fixed-size [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by this stub.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: parallel calls made inside [`ThreadPool::install`] use
/// this pool's thread count. (Threads are spawned per parallel call by the
/// block scheduler rather than parked in the pool.)
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the ambient default.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_OVERRIDE.with(|c| {
            let prev = c.get();
            c.set(Some(self.num_threads));
            prev
        });
        let _restore = Restore(prev);
        op()
    }
}

// ---------------------------------------------------------------------------
// Block scheduler.

/// Blocks per full-length iterator. Block boundaries depend only on the
/// length, so reduction order is identical no matter how many threads run.
const TARGET_BLOCKS: usize = 256;

fn block_size(len: usize) -> usize {
    len.div_ceil(TARGET_BLOCKS).max(1)
}

/// Runs `work` over fixed-size index blocks of `0..len`, returning the
/// per-block results in block order.
fn run_blocks<R, F>(len: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let bs = block_size(len);
    let nblocks = len.div_ceil(bs);
    let threads = current_num_threads().min(nblocks);
    let block_range = |b: usize| b * bs..((b + 1) * bs).min(len);
    if threads <= 1 {
        return (0..nblocks).map(|b| work(block_range(b))).collect();
    }

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(nblocks));
    let run = |_worker: usize| loop {
        let b = cursor.fetch_add(1, Ordering::Relaxed);
        if b >= nblocks {
            break;
        }
        let r = work(block_range(b));
        results.lock().unwrap().push((b, r));
    };
    std::thread::scope(|s| {
        for w in 1..threads {
            s.spawn(move || run(w));
        }
        run(0);
    });
    let mut pairs = results.into_inner().unwrap();
    pairs.sort_unstable_by_key(|&(b, _)| b);
    pairs.into_iter().map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------------
// The parallel-iterator trait.

/// A parallel iterator over an index space `0..plen()`.
///
/// Indexed sources and adapters implement [`item_at`]; position-erasing
/// adapters (`filter`, `flatten`) implement [`for_range`] instead and
/// panic on `item_at` (matching rayon, where those adapters lose the
/// `IndexedParallelIterator` capability).
///
/// [`item_at`]: ParallelIterator::item_at
/// [`for_range`]: ParallelIterator::for_range
pub trait ParallelIterator: Sync + Sized {
    /// Element type.
    type Item: Send;

    /// Length of the underlying index space.
    fn plen(&self) -> usize;

    /// Produces the item at index `i`. The scheduler visits each index at
    /// most once, which is what makes `&mut` items sound.
    fn item_at(&self, i: usize) -> Self::Item;

    /// Feeds every item with index in `range` to `f`, in index order.
    fn for_range(&self, range: Range<usize>, f: &mut dyn FnMut(Self::Item)) {
        for i in range {
            f(self.item_at(i));
        }
    }

    /// Maps each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keeps items satisfying `p`. The result is no longer indexed.
    fn filter<P>(self, p: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, p }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Pairs items positionally with `other`'s items.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Flattens iterable items. The result is no longer indexed.
    fn flatten(self) -> Flatten<Self> {
        Flatten { base: self }
    }

    /// Consumes every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_blocks(self.plen(), |r| self.for_range(r, &mut |x| f(x)));
    }

    /// Collects into `C`, preserving sequential order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items with a thread-count-independent association.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        run_blocks(self.plen(), |r| {
            let mut buf = Vec::new();
            self.for_range(r, &mut |x| buf.push(x));
            buf.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }
}

/// Collections buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection, preserving sequential order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = run_blocks(iter.plen(), |r| {
            let mut v = Vec::with_capacity(r.len());
            iter.for_range(r, &mut |x| v.push(x));
            v
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Adapters.

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn plen(&self) -> usize {
        self.base.plen()
    }

    fn item_at(&self, i: usize) -> R {
        (self.f)(self.base.item_at(i))
    }

    fn for_range(&self, range: Range<usize>, f: &mut dyn FnMut(R)) {
        self.base.for_range(range, &mut |x| f((self.f)(x)));
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<I, P> {
    base: I,
    p: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync,
{
    type Item = I::Item;

    fn plen(&self) -> usize {
        self.base.plen()
    }

    fn item_at(&self, _i: usize) -> I::Item {
        panic!("filter() is not an indexed parallel iterator");
    }

    fn for_range(&self, range: Range<usize>, f: &mut dyn FnMut(I::Item)) {
        self.base.for_range(range, &mut |x| {
            if (self.p)(&x) {
                f(x);
            }
        });
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn plen(&self) -> usize {
        self.base.plen()
    }

    fn item_at(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.item_at(i))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn plen(&self) -> usize {
        self.a.plen().min(self.b.plen())
    }

    fn item_at(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.item_at(i), self.b.item_at(i))
    }
}

/// See [`ParallelIterator::flatten`].
pub struct Flatten<I> {
    base: I,
}

impl<I> ParallelIterator for Flatten<I>
where
    I: ParallelIterator,
    I::Item: IntoIterator,
    <I::Item as IntoIterator>::Item: Send,
{
    type Item = <I::Item as IntoIterator>::Item;

    fn plen(&self) -> usize {
        self.base.plen()
    }

    fn item_at(&self, _i: usize) -> Self::Item {
        panic!("flatten() is not an indexed parallel iterator");
    }

    fn for_range(&self, range: Range<usize>, f: &mut dyn FnMut(Self::Item)) {
        self.base.for_range(range, &mut |xs| {
            for x in xs {
                f(x);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Sources.

/// Shared-slice source (`par_iter`).
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn plen(&self) -> usize {
        self.slice.len()
    }

    fn item_at(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Mutable-slice source (`par_iter_mut`). Sound because the block
/// scheduler hands each index to exactly one worker.
pub struct ParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut T>,
}

unsafe impl<T: Send> Send for ParIterMut<'_, T> {}
unsafe impl<T: Send> Sync for ParIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn plen(&self) -> usize {
        self.len
    }

    fn item_at(&self, i: usize) -> &'a mut T {
        assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Chunked shared-slice source (`par_chunks`).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn plen(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn item_at(&self, i: usize) -> &'a [T] {
        let lo = i * self.chunk;
        let hi = (lo + self.chunk).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Integer-range source (`(a..b).into_par_iter()`).
pub struct IterRange<T> {
    start: T,
    len: usize,
}

macro_rules! range_source {
    ($($t:ty),*) => {$(
        impl ParallelIterator for IterRange<$t> {
            type Item = $t;

            fn plen(&self) -> usize {
                self.len
            }

            fn item_at(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = IterRange<$t>;

            fn into_par_iter(self) -> IterRange<$t> {
                IterRange {
                    start: self.start,
                    len: (self.end.max(self.start) - self.start) as usize,
                }
            }
        }
    )*};
}

range_source!(u32, u64, usize);

// ---------------------------------------------------------------------------
// Entry-point traits.

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter` on shared collections.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: Send + 'data;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over shared references.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// `par_iter_mut` on mutable collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type.
    type Item: Send + 'data;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over mutable references.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized sub-slices (last may be
    /// shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            chunk: chunk_size,
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn filter_map_sum_matches_sequential() {
        let par: u64 = (0..100_000u64)
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .map(|x| x + 1)
            .sum();
        let seq: u64 = (0..100_000u64).filter(|&x| x % 3 == 0).map(|x| x + 1).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn float_sum_is_thread_count_independent() {
        let data: Vec<f64> = (0..50_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let one = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| data.par_iter().map(|&x| x).sum::<f64>());
        let many = super::ThreadPoolBuilder::new()
            .num_threads(7)
            .build()
            .unwrap()
            .install(|| data.par_iter().map(|&x| x).sum::<f64>());
        assert_eq!(one.to_bits(), many.to_bits());
    }

    #[test]
    fn par_iter_mut_touches_every_slot_once() {
        let mut v = vec![0u32; 5000];
        v.par_iter_mut().enumerate().for_each(|(i, slot)| {
            *slot += i as u32;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn zip_and_chunks() {
        let a: Vec<f64> = (0..1000).map(f64::from).collect();
        let b: Vec<f64> = (0..1000).map(|x| f64::from(x) * 3.0).collect();
        let dot: f64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        let expect: f64 = (0..1000).map(|x| f64::from(x) * f64::from(x) * 3.0).sum();
        assert_eq!(dot.to_bits(), expect.to_bits());

        let flat: Vec<u32> = (0..997u32)
            .into_par_iter()
            .collect::<Vec<_>>()
            .par_chunks(64)
            .map(|c| c.to_vec())
            .flatten()
            .collect();
        assert_eq!(flat, (0..997).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
    }
}
