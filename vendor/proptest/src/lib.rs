//! Offline stand-in for the `proptest` crate.
//!
//! Random-sampling property testing without shrinking: the [`proptest!`]
//! macro expands each property to a `#[test]` that draws `cases` inputs
//! from the argument strategies using a deterministic per-test RNG and
//! runs the body. `prop_assume!` rejects a case (it is skipped, not
//! failed); `prop_assert*!` panic with the offending values like regular
//! assertions, so a failing case reports its inputs via the panic message
//! of the enclosing test. No shrinking is attempted.

pub mod test_runner {
    //! Config, RNG, and rejection plumbing used by the macros.

    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Marker returned by `prop_assume!` on rejected cases.
    #[derive(Debug)]
    pub struct Reject;

    /// Deterministic splitmix64 RNG, seeded from the test name so every
    /// property sees a stable input stream across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw below `span` (> 0).
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: each element from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Choosing among explicit alternatives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy picking uniformly from a fixed list.
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice among `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }
}

/// Namespace alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(#[test] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                $(let $arg = $strat;)*
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);)*
                    // The closure gives `prop_assume!` an early-return target.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    // A rejected case (prop_assume!) is simply skipped.
                    let _ = (__case, __outcome);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Asserts within a property; panics with the failing values.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

// Re-exported at the root too, matching `proptest::strategy::Strategy`
// style paths used with the real crate.
pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = Vec<(u32, f64)>> {
        prop::collection::vec((0u32..10, 0.5f64..2.0), 0..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(
            x in 3u32..17,
            y in 0.25f64..0.75,
            flag in any::<bool>(),
            pick in prop::sample::select(vec![2usize, 4, 8]),
            pairs in pair_strategy(),
            fixed in prop::collection::vec(0u32..5, 6),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            let _ = flag;
            prop_assert!([2usize, 4, 8].contains(&pick));
            prop_assert!(pairs.len() < 20);
            prop_assert_eq!(fixed.len(), 6);
            for (k, v) in pairs {
                prop_assert!(k < 10);
                prop_assert!((0.5..2.0).contains(&v));
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
