//! Offline stand-in for the `crossbeam` crate.
//!
//! Covers the two facilities the distributed-emulation driver uses:
//! [`thread::scope`] (scoped spawn + join, `Result`-wrapped like the real
//! crate) and [`channel`] (unbounded MPMC-ish channels, backed by
//! `std::sync::mpsc`, which suffices for the single-consumer usage here).

pub mod thread {
    //! Scoped threads over `std::thread::scope`.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Placeholder handle passed to spawned closures. The real crossbeam
    /// passes a `&Scope` usable for nested spawns; this stub does not
    /// support nested spawning (nothing in the repo uses it).
    pub struct NestedScope {
        _private: (),
    }

    /// Scope handle: spawn threads that may borrow from the enclosing stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread running `f`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&NestedScope { _private: () })),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. Returns `Err` if `f` or an unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    //! Unbounded channels over `std::sync::mpsc`.

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; errs only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = std::sync::mpsc::channel();
        (Sender { inner: s }, Receiver { inner: r })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_and_channels() {
        let data = [1u64, 2, 3, 4];
        let (tx, rx) = super::channel::unbounded();
        let sums: Vec<u64> = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| {
                    let tx = tx.clone();
                    scope.spawn(move |_| {
                        let s: u64 = c.iter().sum();
                        tx.send(s).unwrap();
                        s
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7]);
        let mut got = vec![rx.try_recv().unwrap(), rx.try_recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
        assert!(rx.try_recv().is_err());
    }
}
