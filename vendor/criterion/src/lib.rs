//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API used by this repo's benches:
//! groups, `bench_function` / `bench_with_input`, throughput annotation,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is
//! a plain wall-clock loop (a short warm-up, then `sample_size` timed
//! batches) with median-of-samples reporting to stdout — no statistics
//! engine, no HTML reports, no comparison against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Unit describing how much work one iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Annotates per-iteration work for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut routine);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Ends the group (reporting happens eagerly, so this is cosmetic).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            // The routine never called iter(); nothing to report.
            println!("{}/{}: no measurement", self.name, id);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(" ({:.3e} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}: median {median:?}{rate}", self.name, id);
    }
}

/// Timing loop handle passed to benchmark routines.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, also priming caches/allocations.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a set of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("range", |b| b.iter(|| (0u64..1000).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("vec", 1000), &1000usize, |b, &n| {
            let data: Vec<u64> = (0..n as u64).collect();
            b.iter(|| data.iter().sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
