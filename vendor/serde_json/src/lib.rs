//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON text over the Value tree of the companion
//! `serde` stub: [`to_string`] / [`to_string_pretty`] / [`from_str`] /
//! [`json!`]. Numbers keep integer-ness where possible; non-finite floats
//! serialize as `null` (like `serde_json::Value`).

pub use serde::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Builds a [`Value`] from JSON-ish syntax. The top level may be `null`,
/// an array literal, or an object literal; value positions take Rust
/// expressions implementing `Serialize` (use `Value::Null` or a nested
/// `json!` call where real serde_json would accept a bare literal).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec::Vec::from([ $( $crate::json!($elem) ),* ]))
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec::Vec::from([
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ]))
    };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Printing.

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the float-ness visible in the text (serde_json prints 1.0).
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => push_float(out, *f),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => write_seq(out, items.iter().map(Item::Plain), '[', ']', indent),
        Value::Object(entries) => write_seq(
            out,
            entries.iter().map(|(k, v)| Item::Keyed(k, v)),
            '{',
            '}',
            indent,
        ),
    }
}

enum Item<'a> {
    Plain(&'a Value),
    Keyed(&'a str, &'a Value),
}

fn write_seq<'a>(
    out: &mut String,
    items: impl Iterator<Item = Item<'a>>,
    open: char,
    close: char,
    indent: Option<usize>,
) {
    out.push(open);
    let mut first = true;
    let mut any = false;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        any = true;
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
        }
        match item {
            Item::Plain(v) => write_value(out, v, indent.map(|l| l + 1)),
            Item::Keyed(k, v) => {
                push_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent.map(|l| l + 1));
            }
        }
    }
    if any {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
    }
    out.push(close);
}

/// Compact JSON text for any serializable value.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Two-space-indented JSON text for any serializable value.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.eat_lit("null").map(|()| Value::Null),
            b't' => self.eat_lit("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_lit("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            entries.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                self.eat_lit("\\u")?;
                                let lo = self.hex4()?;
                                let combined = 0x10000u32
                                    + (((hi as u32) - 0xd800) << 10)
                                    + ((lo as u32) - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi as u32)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let doc = json!({
            "title": "t",
            "headers": ["a", "b"],
            "rows": [[1u32, 2u32]],
            "pi": 3.5,
            "neg": -4i64,
            "flag": true,
            "nothing": Value::Null,
        });
        let text = to_string_pretty(&doc).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back["title"], "t");
        assert_eq!(back["headers"][0], "a");
        assert_eq!(back["rows"][0][1].as_u64(), Some(2));
        assert_eq!(back["pi"].as_f64(), Some(3.5));
        assert_eq!(back["neg"].as_i64(), Some(-4));
        assert_eq!(back["flag"], Value::Bool(true));
        assert_eq!(back["nothing"], Value::Null);
    }

    #[test]
    fn strings_escape_and_parse() {
        let v = Value::String("a\"b\\c\nd\u{1f600}".to_string());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let surrogate: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(surrogate, Value::String("\u{1f600}".to_string()));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
