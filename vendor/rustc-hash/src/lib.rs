//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the same multiply-based `FxHasher` scheme rustc uses: fast,
//! deterministic, not DoS-resistant — exactly what the host accumulators
//! want. API surface: [`FxHasher`], [`FxHashMap`], [`FxHashSet`],
//! [`FxBuildHasher`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (64-bit golden-ratio mix).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc FxHash hasher: word-at-a-time multiply-rotate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u32, f64> = FxHashMap::default();
        *m.entry(3).or_insert(0.0) += 1.5;
        *m.entry(3).or_insert(0.0) += 1.5;
        assert_eq!(m[&3], 3.0);
    }

    #[test]
    fn deterministic() {
        let hash = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }
}
