//! Offline stand-in for the `rand` crate.
//!
//! Deterministic xoshiro256++ [`rngs::SmallRng`] seeded via splitmix64,
//! with the sampling surface the generators use: [`Rng::gen`],
//! [`Rng::gen_range`] over integer/float ranges (inclusive or exclusive),
//! [`SeedableRng::seed_from_u64`], [`distributions::Distribution`] and
//! [`seq::SliceRandom::shuffle`]. Stream values differ from upstream rand;
//! everything in-repo only relies on determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution
    /// (`f64` in `[0,1)`, full-width integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `low..high` or `low..=high`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire reduction without the rejection loop; bias is
/// < 2^-64 per draw, irrelevant for synthetic-graph generation).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                (lo as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * unit
    }
}

pub mod distributions {
    //! The [`Distribution`] trait and the [`Standard`] distribution.

    use super::{Rng, RngCore};

    /// Types that can produce samples of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The canonical distribution for `gen()`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (RngCore::next_u32(rng) >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            RngCore::next_u32(rng)
        }
    }

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            RngCore::next_u64(rng)
        }
    }

    impl Distribution<usize> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            RngCore::next_u64(rng) as usize
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            RngCore::next_u64(rng) & 1 == 1
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ with splitmix64 seeding.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(0..17u32);
            assert!(x < 17);
            let y: usize = rng.gen_range(0..=5usize);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let s = Standard.sample(&mut rng);
        assert!((0.0f64..1.0).contains(&s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice untouched");
    }
}
