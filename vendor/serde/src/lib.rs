//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor machinery, this stub uses a concrete
//! in-memory [`Value`] tree: [`Serialize`] maps a type *to* a `Value`,
//! [`Deserialize`] reconstructs a type *from* one. The companion
//! `serde_derive` stub generates those impls for the repo's concrete
//! structs and enums (externally-tagged, like real serde), and the
//! `serde_json` stub renders/parses `Value` as JSON text.

use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON-like document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used for values above `i64::MAX` and all
    /// unsigned Rust sources).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned integer payload, if losslessly available.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Signed integer payload, if losslessly available.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Deserialization failure: what was expected, optionally where.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Fetches a required object field.
pub fn get_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    v.get(name)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Converts to the document tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs from the document tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::custom("expected integer"))?;
                <$t>::try_from(i).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                Ok(($($name::from_value(
                    a.get($idx).ok_or_else(|| DeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(get_field(v, "secs")?)?;
        let nanos = u32::from_value(get_field(v, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars_and_containers() {
        let v = vec![(1u32, 2.5f64), (7, 0.25)].to_value();
        let back: Vec<(u32, f64)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, vec![(1, 2.5), (7, 0.25)]);

        let arr = [1u64, 2, 3].to_value();
        let back: [u64; 3] = Deserialize::from_value(&arr).unwrap();
        assert_eq!(back, [1, 2, 3]);

        let none: Option<String> = None;
        assert_eq!(none.to_value(), Value::Null);
        let some: Option<String> = Deserialize::from_value(&"hi".to_value()).unwrap();
        assert_eq!(some.as_deref(), Some("hi"));

        let d = Duration::new(3, 500).to_value();
        assert_eq!(Duration::from_value(&d).unwrap(), Duration::new(3, 500));
    }

    #[test]
    fn indexing_and_comparison() {
        let doc = Value::Object(vec![(
            "headers".to_string(),
            Value::Array(vec![Value::String("a".to_string())]),
        )]);
        assert_eq!(doc["headers"][0], "a");
        assert_eq!(doc["missing"], Value::Null);
        assert_eq!(doc["headers"][9], Value::Null);
    }
}
